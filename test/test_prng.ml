(* Unit and property tests for the deterministic PRNG substrate. *)

module Rng = Prng.Rng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checki "different seeds diverge" 0 !same

let test_copy_independent () =
  let a = Rng.of_int 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies replay" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* b is now one step behind; advancing it must reproduce a's last value *)
  ignore (Rng.bits64 b)

let test_split_independence () =
  let parent = Rng.create 99L in
  let child = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr matches
  done;
  checki "split streams differ" 0 !matches

let test_int_bounds () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_one () =
  let rng = Rng.of_int 4 in
  for _ = 1 to 50 do
    checki "bound 1 gives 0" 0 (Rng.int rng 1)
  done

let test_int_invalid () =
  let rng = Rng.of_int 5 in
  Alcotest.check_raises "non-positive bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in () =
  let rng = Rng.of_int 6 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done;
  checki "singleton range" 9 (Rng.int_in rng 9 9)

let test_int_uniformity () =
  let rng = Rng.of_int 8 in
  let counts = Array.make 8 0 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = trials / 8 in
      checkb (Printf.sprintf "bin %d near uniform" i) true
        (abs (c - expected) < expected / 10))
    counts

let test_float_bounds () =
  let rng = Rng.of_int 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    checkb "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.of_int 10 in
  for _ = 1 to 100 do
    checkb "p=0 never" false (Rng.bernoulli rng 0.0);
    checkb "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_bernoulli_mean () =
  let rng = Rng.of_int 11 in
  let hits = ref 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int trials in
  checkb "mean near 0.3" true (abs_float (mean -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Rng.of_int 12 in
  let s = Metrics.Stats.create () in
  for _ = 1 to 50_000 do
    Metrics.Stats.add s (Rng.exponential rng 4.0)
  done;
  checkb "mean near 1/4" true (abs_float (Metrics.Stats.mean s -. 0.25) < 0.01)

let test_exponential_positive () =
  let rng = Rng.of_int 13 in
  for _ = 1 to 1000 do
    checkb "positive" true (Rng.exponential rng 0.5 > 0.0)
  done

let test_geometric_mean () =
  let rng = Rng.of_int 14 in
  let s = Metrics.Stats.create () in
  for _ = 1 to 50_000 do
    Metrics.Stats.add_int s (Rng.geometric rng 0.25)
  done;
  (* mean of failures-before-success = (1-p)/p = 3 *)
  checkb "mean near 3" true (abs_float (Metrics.Stats.mean s -. 3.0) < 0.15)

let test_geometric_p1 () =
  let rng = Rng.of_int 15 in
  for _ = 1 to 100 do
    checki "p=1 is 0" 0 (Rng.geometric rng 1.0)
  done

let test_binomial_mean_var () =
  let rng = Rng.of_int 16 in
  let s = Metrics.Stats.create () in
  let n = 100 and p = 0.3 in
  for _ = 1 to 30_000 do
    Metrics.Stats.add_int s (Rng.binomial rng n p)
  done;
  checkb "mean near np" true (abs_float (Metrics.Stats.mean s -. 30.0) < 0.3);
  checkb "var near np(1-p)" true (abs_float (Metrics.Stats.variance s -. 21.0) < 1.5)

let test_binomial_edges () =
  let rng = Rng.of_int 17 in
  checki "p=0" 0 (Rng.binomial rng 50 0.0);
  checki "p=1" 50 (Rng.binomial rng 50 1.0);
  checki "n=0" 0 (Rng.binomial rng 0 0.5)

let test_binomial_high_p () =
  let rng = Rng.of_int 18 in
  let s = Metrics.Stats.create () in
  for _ = 1 to 20_000 do
    Metrics.Stats.add_int s (Rng.binomial rng 40 0.9)
  done;
  checkb "mean near 36" true (abs_float (Metrics.Stats.mean s -. 36.0) < 0.2)

let test_poisson_mean () =
  let rng = Rng.of_int 19 in
  let s = Metrics.Stats.create () in
  for _ = 1 to 30_000 do
    Metrics.Stats.add_int s (Rng.poisson rng 6.5)
  done;
  checkb "mean near 6.5" true (abs_float (Metrics.Stats.mean s -. 6.5) < 0.15)

let test_poisson_zero () =
  let rng = Rng.of_int 20 in
  for _ = 1 to 100 do
    checki "lambda 0" 0 (Rng.poisson rng 0.0)
  done

let test_poisson_large () =
  let rng = Rng.of_int 21 in
  let s = Metrics.Stats.create () in
  for _ = 1 to 2_000 do
    Metrics.Stats.add_int s (Rng.poisson rng 1200.0)
  done;
  checkb "splitting path: mean near 1200" true
    (abs_float (Metrics.Stats.mean s -. 1200.0) < 5.0)

let test_shuffle_permutation () =
  let rng = Rng.of_int 22 in
  let original = Array.init 50 (fun i -> i) in
  let shuffled = Rng.shuffle rng original in
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" original sorted;
  check (Alcotest.array Alcotest.int) "original untouched" (Array.init 50 (fun i -> i)) original

let test_shuffle_moves_elements () =
  let rng = Rng.of_int 23 in
  let a = Array.init 100 (fun i -> i) in
  let s = Rng.shuffle rng a in
  let fixed = ref 0 in
  Array.iteri (fun i v -> if i = v then incr fixed) s;
  checkb "not identity" true (!fixed < 20)

let test_sample_distinct () =
  let rng = Rng.of_int 24 in
  for _ = 1 to 200 do
    let l = Rng.sample_distinct rng 10 30 in
    checki "length" 10 (List.length l);
    checki "distinct" 10 (List.length (List.sort_uniq compare l));
    List.iter (fun v -> checkb "in range" true (v >= 0 && v < 30)) l
  done

let test_sample_distinct_full () =
  let rng = Rng.of_int 25 in
  let l = Rng.sample_distinct rng 5 5 in
  check (Alcotest.list Alcotest.int) "all elements" [ 0; 1; 2; 3; 4 ]
    (List.sort compare l)

let test_sample_distinct_invalid () =
  let rng = Rng.of_int 26 in
  Alcotest.check_raises "m > bound"
    (Invalid_argument "Rng.sample_distinct: m > bound") (fun () ->
      ignore (Rng.sample_distinct rng 6 5))

let test_save_restore () =
  let a = Rng.create 77L in
  ignore (Rng.bits64 a);
  ignore (Rng.bits64 a);
  let state = Rng.save a in
  let b = Rng.restore state in
  for _ = 1 to 50 do
    Alcotest.check Alcotest.int64 "restored stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_pick () =
  let rng = Rng.of_int 27 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    checkb "member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  checki "singleton list" 5 (Rng.pick_list rng [ 5 ])

(* --- property tests --- *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always within bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Rng.of_int seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:300
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.of_int seed in
      let a = Array.of_list l in
      let s = Rng.shuffle rng a in
      List.sort compare (Array.to_list s) = List.sort compare l)

let prop_binomial_range =
  QCheck.Test.make ~name:"binomial in [0, n]" ~count:500
    QCheck.(triple small_int (int_range 0 200) (float_range 0.0 1.0))
    (fun (seed, n, p) ->
      let rng = Rng.of_int seed in
      let v = Rng.binomial rng n p in
      v >= 0 && v <= n)

let prop_geometric_nonneg =
  QCheck.Test.make ~name:"geometric non-negative" ~count:500
    QCheck.(pair small_int (float_range 0.01 1.0))
    (fun (seed, p) ->
      let rng = Rng.of_int seed in
      Rng.geometric rng p >= 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
    Alcotest.test_case "copy replays" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bound 1" `Quick test_int_one;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "int_in range" `Quick test_int_in;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "bernoulli mean" `Quick test_bernoulli_mean;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
    Alcotest.test_case "binomial mean/var" `Quick test_binomial_mean_var;
    Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
    Alcotest.test_case "binomial high p" `Quick test_binomial_high_p;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "poisson lambda 0" `Quick test_poisson_zero;
    Alcotest.test_case "poisson large lambda" `Quick test_poisson_large;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle moves elements" `Quick test_shuffle_moves_elements;
    Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
    Alcotest.test_case "sample_distinct full range" `Quick test_sample_distinct_full;
    Alcotest.test_case "sample_distinct invalid" `Quick test_sample_distinct_invalid;
    Alcotest.test_case "save/restore" `Quick test_save_restore;
    Alcotest.test_case "pick membership" `Quick test_pick;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_multiset;
    QCheck_alcotest.to_alcotest prop_binomial_range;
    QCheck_alcotest.to_alcotest prop_geometric_nonneg;
  ]
