(* Tests for lib/audit: FNV folding, canonical digest determinism, the
   recorder's zero-perturbation and byte-identity contracts (rerun and
   -j), export round-tripping, and the headline bisection property — a
   mid-run RNG perturbation is localised to the exact first divergent
   step and the rng subsystem. *)

module Spec = Scenario.Spec
module Rng = Prng.Rng
module Engine = Now_core.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------- fnv ---------- *)

let test_fnv_known_values () =
  (* FNV-1a 64 reference values: the offset basis, and the published
     digest of "a" (0x61). *)
  checks "offset basis" "cbf29ce484222325" (Audit.Fnv.to_hex Audit.Fnv.init);
  checks "fnv1a(\"a\")" "af63dc4c8601ec8c"
    (Audit.Fnv.to_hex (Audit.Fnv.byte Audit.Fnv.init 0x61));
  (* int/int64/string folds are injective enough to separate neighbours. *)
  checkb "int neighbours differ" true
    (Audit.Fnv.int Audit.Fnv.init 41 <> Audit.Fnv.int Audit.Fnv.init 42);
  (* The string fold is terminated, so concatenation cannot collide. *)
  checkb "string framing" true
    (Audit.Fnv.string (Audit.Fnv.string Audit.Fnv.init "ab") "c"
    <> Audit.Fnv.string (Audit.Fnv.string Audit.Fnv.init "a") "bc")

let test_fnv_hex_round_trip () =
  let d = Audit.Fnv.int64 Audit.Fnv.init (-1L) in
  (match Audit.Fnv.of_hex (Audit.Fnv.to_hex d) with
  | Some d' -> checkb "hex round trip" true (d = d')
  | None -> Alcotest.fail "of_hex rejected its own to_hex");
  checkb "bad hex rejected" true (Audit.Fnv.of_hex "xyz" = None);
  checkb "short hex rejected" true (Audit.Fnv.of_hex "abc" = None)

(* ---------- digests ---------- *)

let small_spec = { Scenario.steady with Spec.steps = 4 }

let state_driver seed =
  Scenario.State_driver.create ~seed:(Int64.of_int seed) small_spec

let msg_driver seed = Scenario.Msg_driver.create_cell ~seed ~cell:0 small_spec

let test_digests_deterministic () =
  let digests seed = Audit.Digest_of.engine (Scenario.State_driver.engine (state_driver seed)) in
  checkb "same seed, same digests" true (digests 5 = digests 5);
  checkb "different seed, different table digest" true
    (List.assoc "table" (digests 5) <> List.assoc "table" (digests 6));
  let names = List.map fst (digests 5) in
  checkb "all five subsystems, sorted" true
    (names = Audit.Digest_of.subsystems
    && names = List.sort compare names)

let test_config_digests_deterministic () =
  let digests seed =
    Audit.Digest_of.config (Scenario.Msg_driver.config (msg_driver seed))
  in
  checkb "same seed, same digests" true (digests 5 = digests 5);
  checkb "different seed, different digests" true (digests 5 <> digests 6);
  checkb "all five subsystems" true
    (List.map fst (digests 5) = Audit.Digest_of.subsystems)

(* A mutation must move the digest of the touched subsystem. *)
let test_digest_tracks_mutation () =
  let d = state_driver 7 in
  let engine = Scenario.State_driver.engine d in
  let before = Audit.Digest_of.engine engine in
  ignore (Engine.join engine Now_core.Node.Honest);
  let after = Audit.Digest_of.engine engine in
  checkb "table digest moved on join" true
    (List.assoc "table" before <> List.assoc "table" after);
  checkb "rng digest moved on join" true
    (List.assoc "rng" before <> List.assoc "rng" after)

(* ---------- recorder ---------- *)

let test_recorder_cadence () =
  let r = Audit.create ~cadence:3 () in
  let engine = Scenario.State_driver.engine (state_driver 8) in
  Audit.with_recorder r (fun () ->
      for step = 1 to 7 do
        Audit.maybe_record_engine ~step engine
      done);
  let steps =
    List.sort_uniq compare
      (List.map (fun (f : Audit.Recorder.frame) -> f.Audit.Recorder.step)
         (Audit.Recorder.frames r))
  in
  checkb "only steps on the cadence" true (steps = [ 3; 6 ]);
  checki "five subsystems per recorded step" (2 * 5) (Audit.Recorder.n_frames r)

let test_single_recorder_at_a_time () =
  let a = Audit.create () and b = Audit.create () in
  Audit.install a;
  Alcotest.check_raises "second install rejected"
    (Invalid_argument "Audit.Recorder.install: a recorder is already installed")
    (fun () -> Audit.install b);
  ignore (Audit.uninstall ());
  checkb "uninstalled" true (not (Audit.recording ()))

(* The recorder only reads: a driven trajectory saves byte-identically
   with recording on or off, and the cell stats are unchanged. *)
let test_recording_is_zero_perturbation () =
  let run ~record =
    let d = state_driver 9 in
    let go () =
      for time = 1 to 12 do
        Scenario.State_driver.step d ~time
      done
    in
    if record then Audit.with_recorder (Audit.create ()) go else go ();
    Engine.save (Scenario.State_driver.engine d)
  in
  checks "state trajectory identical with recording on" (run ~record:false)
    (run ~record:true);
  let cells ~record =
    let go () = Scenario.cells ~jobs:1 ~engine:`Mixed ~seed:3 ~cells:2 small_spec in
    if record then Audit.with_recorder (Audit.create ()) go else go ()
  in
  checkb "cell stats identical with recording on" true
    (cells ~record:false = cells ~record:true)

(* The digest stream itself is byte-identical across reruns and -j. *)
let recorded_stream ~jobs =
  let r = Audit.create () in
  ignore
    (Audit.with_recorder r (fun () ->
         Scenario.cells ~jobs ~engine:`Mixed ~seed:11 ~cells:4 small_spec));
  Audit.Export.jsonl_string r

let test_stream_identical_across_reruns () =
  let a = recorded_stream ~jobs:1 in
  checkb "non-trivial stream" true (String.length a > 500);
  checks "rerun, same bytes" a (recorded_stream ~jobs:1)

let test_stream_identical_across_jobs () =
  checks "-j1 = -j4" (recorded_stream ~jobs:1) (recorded_stream ~jobs:4)

(* ---------- export round trip ---------- *)

let test_export_round_trip () =
  let r = Audit.create () in
  ignore
    (Audit.with_recorder r (fun () ->
         Scenario.cells ~jobs:1 ~engine:`Msg ~seed:13 ~cells:2 small_spec));
  let frames = Audit.Recorder.frames r in
  checkb "frames recorded" true (frames <> []);
  match Audit.Export.of_jsonl (Audit.Export.jsonl_string r) with
  | Error msg -> Alcotest.fail msg
  | Ok parsed -> checkb "parse (print frames) = frames" true (parsed = frames)

let test_export_rejects_garbage () =
  checkb "non-json rejected" true
    (Result.is_error (Audit.Export.of_jsonl "not json\n"));
  checkb "missing key rejected" true
    (Result.is_error (Audit.Export.of_jsonl "{\"step\":1}\n"))

(* ---------- bisection ---------- *)

let static_spec ~steps =
  {
    Spec.default with
    Spec.name = "static";
    churn = Spec.Static;
    drive = Spec.no_drive;
    steps;
  }

(* The headline property: on a static scenario (steps draw no
   randomness), stealing RNG draws between steps [at] and [at+1] of run B
   must be localised to exactly step [at+1] and exactly the rng
   subsystem. *)
let perturbed_frames ~steps ~perturb_at ~draws =
  let spec = static_spec ~steps in
  let run ~perturb =
    let r = Audit.create () in
    let d = Scenario.Msg_driver.create_cell ~seed:21 ~cell:0 spec in
    Audit.with_recorder r (fun () ->
        for time = 1 to steps do
          Scenario.Msg_driver.step d ~time;
          if perturb && time = perturb_at then
            for _ = 1 to draws do
              ignore (Rng.int (Scenario.Msg_driver.rng d) 1_000)
            done
        done);
    Audit.Recorder.frames r
  in
  (run ~perturb:false, run ~perturb:true)

let test_bisect_localises_rng_perturbation () =
  let a, b = perturbed_frames ~steps:20 ~perturb_at:10 ~draws:3 in
  match Audit.Bisect.first_divergence a b with
  | None -> Alcotest.fail "perturbed run did not diverge"
  | Some d ->
    checki "first divergent step" 11 d.Audit.Bisect.d_step;
    checks "divergent subsystem" "rng" d.Audit.Bisect.d_subsystem;
    checkb "no other subsystem diverges at that step" true
      (d.Audit.Bisect.also = []);
    checkb "described" true
      (let text = Audit.Bisect.describe d in
       String.length text > 0
       && d.Audit.Bisect.d_step = 11
       &&
       let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
         in
         nn = 0 || go 0
       in
       contains text "step 11" && contains text "subsystem rng")

let test_bisect_agreement_is_none () =
  let a, b = perturbed_frames ~steps:8 ~perturb_at:4 ~draws:1 in
  checkb "identical runs agree" true
    (Audit.Bisect.first_divergence a a = None);
  checkb "perturbed pair still diverges" true
    (Audit.Bisect.first_divergence a b <> None)

(* A frame present on one side only (shorter run) is a divergence. *)
let test_bisect_missing_frame_diverges () =
  let a, _ = perturbed_frames ~steps:6 ~perturb_at:3 ~draws:1 in
  let truncated =
    List.filter (fun (f : Audit.Recorder.frame) -> f.Audit.Recorder.step <= 4) a
  in
  match Audit.Bisect.first_divergence a truncated with
  | None -> Alcotest.fail "missing frames not flagged"
  | Some d ->
    checki "diverges at the first missing step" 5 d.Audit.Bisect.d_step;
    checkb "side B missing" true (d.Audit.Bisect.digest_b = None)

let suite =
  [
    Alcotest.test_case "fnv known values" `Quick test_fnv_known_values;
    Alcotest.test_case "fnv hex round trip" `Quick test_fnv_hex_round_trip;
    Alcotest.test_case "engine digests deterministic" `Quick
      test_digests_deterministic;
    Alcotest.test_case "config digests deterministic" `Quick
      test_config_digests_deterministic;
    Alcotest.test_case "digest tracks mutation" `Quick
      test_digest_tracks_mutation;
    Alcotest.test_case "recorder cadence" `Quick test_recorder_cadence;
    Alcotest.test_case "single recorder at a time" `Quick
      test_single_recorder_at_a_time;
    Alcotest.test_case "recording is zero-perturbation" `Quick
      test_recording_is_zero_perturbation;
    Alcotest.test_case "stream identical across reruns" `Quick
      test_stream_identical_across_reruns;
    Alcotest.test_case "stream identical across -j" `Quick
      test_stream_identical_across_jobs;
    Alcotest.test_case "export round trip" `Quick test_export_round_trip;
    Alcotest.test_case "export rejects garbage" `Quick
      test_export_rejects_garbage;
    Alcotest.test_case "bisect localises an rng perturbation" `Quick
      test_bisect_localises_rng_perturbation;
    Alcotest.test_case "bisect agreement is none" `Quick
      test_bisect_agreement_is_none;
    Alcotest.test_case "bisect flags missing frames" `Quick
      test_bisect_missing_frame_diverges;
  ]
