(* Tests for the deterministic fork-join pool (lib/exec): order-preserving
   merge, worker-count independence, exception propagation, nesting, the
   qcheck equivalence with List.map, and the end-to-end guarantee the rest
   of the repo relies on — a real experiment produces byte-identical
   tables for -j 1 and -j 4. *)

let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let check_ints = Alcotest.check (Alcotest.list Alcotest.int)

let test_order_preserving () =
  let xs = List.init 100 (fun i -> i) in
  check_ints "merge in submission order"
    (List.map (fun x -> x * x) xs)
    (Exec.par_map ~jobs:4 (fun x -> x * x) xs)

let test_worker_count_independence () =
  let xs = List.init 57 (fun i -> 3 * i) in
  let expect = List.map (fun x -> x + 1) xs in
  List.iter
    (fun jobs ->
      check_ints
        (Printf.sprintf "jobs=%d" jobs)
        expect
        (Exec.par_map ~jobs (fun x -> x + 1) xs))
    [ 1; 2; 3; 8; 100 ]

exception Boom of int

let test_exception_propagation () =
  (* Two tasks fail; the lowest submission index must win no matter which
     worker hit its failure first. *)
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "lowest failing index, jobs=%d" jobs)
        (Boom 3)
        (fun () -> ignore (Exec.par_map ~jobs f (List.init 10 (fun i -> i)))))
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  check_ints "empty" [] (Exec.par_map ~jobs:4 (fun x -> x) []);
  check_ints "singleton" [ 42 ] (Exec.par_map ~jobs:4 (fun x -> x) [ 42 ])

let test_nested () =
  (* Nested par_map must return the same values whether the inner calls
     get real workers (explicit ~jobs) or are throttled by the global
     domain budget (default jobs). *)
  let inner x = Exec.par_map ~jobs:4 (fun y -> x + y) [ 1; 2; 3 ] in
  let got = Exec.par_map ~jobs:4 inner [ 10; 20 ] in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "nested (explicit jobs)" [ [ 11; 12; 13 ]; [ 21; 22; 23 ] ] got;
  let saved = Exec.default_jobs () in
  Exec.set_default_jobs 4;
  let inner x = Exec.par_map (fun y -> x * y) [ 1; 2; 3; 4 ] in
  let got = Exec.par_map inner [ 1; 10; 100 ] in
  Exec.set_default_jobs saved;
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "nested (budgeted)"
    [ [ 1; 2; 3; 4 ]; [ 10; 20; 30; 40 ]; [ 100; 200; 300; 400 ] ]
    got

let test_default_jobs () =
  let saved = Exec.default_jobs () in
  Exec.set_default_jobs 3;
  checki "set" 3 (Exec.default_jobs ());
  Exec.set_default_jobs 0;
  checki "clamped to 1" 1 (Exec.default_jobs ());
  Exec.set_default_jobs saved

let test_par_map_trials_deterministic () =
  (* The per-task stream depends only on the task index and seed; jobs must
     not matter, and distinct tasks must see distinct streams. *)
  let run jobs =
    Harness.Common.par_map_trials ~jobs ~seed:99L
      (fun ~rng () -> Prng.Rng.int rng 1_000_000)
      (List.init 16 (fun _ -> ()))
  in
  let seq = run 1 in
  check_ints "jobs=4 equals jobs=1" seq (run 4);
  check_ints "jobs=7 equals jobs=1" seq (run 7);
  checki "distinct streams" 16 (List.length (List.sort_uniq compare seq))

let test_experiment_table_byte_identical () =
  (* The acceptance criterion of the multicore executor: a real experiment
     (E4 exercises par_map over two sweeps) renders byte-identical tables
     for -j 1 and -j 4 on the same seed. *)
  let saved = Exec.default_jobs () in
  let table_csv jobs =
    Exec.set_default_jobs jobs;
    let r = Harness.E4.run ~mode:Harness.Common.Quick () in
    Metrics.Table.to_csv r.Harness.Common.table
  in
  let csv1 = table_csv 1 in
  let csv4 = table_csv 4 in
  Exec.set_default_jobs saved;
  checks "E4 table, -j 1 vs -j 4" csv1 csv4

let qcheck_par_map_matches_list_map =
  QCheck.Test.make ~count:100 ~name:"par_map f == List.map f"
    QCheck.(pair (small_list int) (int_range 1 8))
    (fun (xs, jobs) ->
      Exec.par_map ~jobs (fun x -> (2 * x) - 1) xs
      = List.map (fun x -> (2 * x) - 1) xs)

let suite =
  [
    Alcotest.test_case "order-preserving merge" `Quick test_order_preserving;
    Alcotest.test_case "worker-count independence" `Quick
      test_worker_count_independence;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "nested par_map" `Quick test_nested;
    Alcotest.test_case "default jobs" `Quick test_default_jobs;
    Alcotest.test_case "par_map_trials deterministic" `Quick
      test_par_map_trials_deterministic;
    QCheck_alcotest.to_alcotest qcheck_par_map_matches_list_map;
    Alcotest.test_case "E4 tables byte-identical across -j" `Slow
      test_experiment_table_byte_identical;
  ]
