(* Tests for the adversary driver: budget discipline, strategies, size
   bounds. *)

module Engine = Now_core.Engine
module Node = Now_core.Node
module Params = Now_core.Params
module Rng = Prng.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let make_engine ?(n0 = 300) ?(tau = 0.15) ?(seed = 3L) () =
  let params =
    Params.make ~n_max:(1 lsl 10) ~k:3 ~tau ~walk_mode:Params.Direct_sample ()
  in
  let rng = Rng.create seed in
  let initial =
    List.init n0 (fun _ ->
        if Rng.bernoulli rng tau then Node.Byzantine else Node.Honest)
  in
  Engine.create ~seed params ~initial

let test_budget_respected () =
  let tau = 0.2 in
  let e = make_engine ~tau () in
  let d = Adversary.create ~tau ~strategy:(Adversary.Random_churn 0.5) e in
  for _ = 1 to 400 do
    Adversary.step d
  done;
  (* The greedy corruption rule keeps the global fraction at most tau plus
     one node's worth of slack. *)
  checkb "budget respected" true
    (Adversary.byz_fraction d <= tau +. (2.0 /. float_of_int (Engine.n_nodes e)))

let test_step_counting () =
  let e = make_engine () in
  let d = Adversary.create ~tau:0.15 ~strategy:(Adversary.Random_churn 0.5) e in
  for _ = 1 to 50 do
    Adversary.step d
  done;
  checki "steps" 50 (Adversary.steps_done d);
  checki "joins + leaves = steps" 50 (Adversary.joins d + Adversary.leaves d)

let test_run_sampling () =
  let e = make_engine () in
  let d = Adversary.create ~tau:0.15 ~strategy:(Adversary.Random_churn 0.5) e in
  let samples = ref 0 in
  Adversary.run ~steps_per_sample:10 d ~steps:35 ~on_sample:(fun _ -> incr samples);
  (* 3 periodic samples + 1 final *)
  checki "samples" 4 !samples;
  checki "steps" 35 (Adversary.steps_done d)

let test_grow_shrink_bounds () =
  let e = make_engine ~n0:300 () in
  let d = Adversary.create ~tau:0.15 ~strategy:(Adversary.Grow_shrink 200) e in
  let min_seen = ref max_int and max_seen = ref 0 in
  for _ = 1 to 800 do
    Adversary.step d;
    let n = Engine.n_nodes e in
    if n < !min_seen then min_seen := n;
    if n > !max_seen then max_seen := n
  done;
  let params = Engine.params e in
  checkb "never below sqrt N" true (!min_seen >= Params.min_network_size params);
  checkb "never above N" true (!max_seen <= params.Params.n_max);
  checkb "actually grew" true (!max_seen >= 450);
  checkb "actually shrank back" true (!min_seen <= 310)

let test_target_cluster_strategy () =
  let e = make_engine () in
  let d = Adversary.create ~tau:0.15 ~strategy:Adversary.Target_cluster e in
  for _ = 1 to 100 do
    Adversary.step d
  done;
  (* A target exists and its fraction is a valid probability. *)
  let f = Adversary.target_byz_fraction d in
  checkb "target fraction valid" true (f >= 0.0 && f < 1.0);
  checkb "population stable under join-leave churn" true
    (abs (Engine.n_nodes e - 300) <= 2)

let test_dos_strategy_kills_honest () =
  let e = make_engine () in
  let honest_before =
    Node.Roster.count (Engine.roster e) - Node.Roster.byzantine_count (Engine.roster e)
  in
  let d = Adversary.create ~tau:0.15 ~strategy:Adversary.Dos_honest e in
  for _ = 1 to 100 do
    Adversary.step d
  done;
  ignore honest_before;
  checkb "leaves executed" true (Adversary.leaves d > 20);
  checkb "joins compensate" true (Adversary.joins d > 20)

let test_min_honest_monotone () =
  let e = make_engine () in
  let d = Adversary.create ~tau:0.15 ~strategy:(Adversary.Random_churn 0.5) e in
  let prev = ref (Adversary.min_honest_fraction_seen d) in
  for _ = 1 to 60 do
    Adversary.step d;
    let f = Adversary.min_honest_fraction_seen d in
    checkb "floor never rises" true (f <= !prev +. 1e-9);
    prev := f
  done

let test_strategy_names () =
  Alcotest.check Alcotest.string "churn" "random-churn(0.50)"
    (Adversary.strategy_name (Adversary.Random_churn 0.5));
  Alcotest.check Alcotest.string "target" "target-cluster"
    (Adversary.strategy_name Adversary.Target_cluster);
  Alcotest.check Alcotest.string "dos" "dos-honest"
    (Adversary.strategy_name Adversary.Dos_honest);
  Alcotest.check Alcotest.string "grow" "grow-shrink(7)"
    (Adversary.strategy_name (Adversary.Grow_shrink 7))

let suite =
  [
    Alcotest.test_case "budget respected" `Quick test_budget_respected;
    Alcotest.test_case "step counting" `Quick test_step_counting;
    Alcotest.test_case "run sampling" `Quick test_run_sampling;
    Alcotest.test_case "grow-shrink bounds" `Quick test_grow_shrink_bounds;
    Alcotest.test_case "target strategy" `Quick test_target_cluster_strategy;
    Alcotest.test_case "dos strategy" `Quick test_dos_strategy_kills_honest;
    Alcotest.test_case "honest floor monotone" `Quick test_min_honest_monotone;
    Alcotest.test_case "strategy names" `Quick test_strategy_names;
  ]
