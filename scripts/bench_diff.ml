(* bench_diff — compare two BENCH_monitor.json files (baseline vs current)
   and flag out-of-band drift.

   Usage:  dune exec scripts/bench_diff.exe -- BASELINE CURRENT

   Exit codes:
     0  within band
     1  drift: an experiment regressed (ok -> not ok), its table shape
        changed (row count), an invariant aggregate moved, the violation
        tally changed, or an experiment's wall time regressed beyond the
        band (ratio > 2.0, ignored for runs under 100 ms).  On exit 1 the
        offending experiments are re-listed with both wall times after
        the summary line, so the blocking reason is visible without
        scrolling the full report.
     2  format error (missing file, unparsable JSON, wrong format version)

   Caller-domain allocation aggregates (alloc_bytes, present since the
   telemetry layer landed) are compared in a purely informational band:
   a big swing prints an ok-line suggesting a look, and never blocks —
   allocation depends on GC pacing and inlining, not just the workload.

   The > 2.0x regression band is wide enough to absorb machine-to-machine
   variation, so CI treats exit 1 as blocking.  Speedups (ratio < 0.5)
   are reported informationally only — a faster run is a reason to
   refresh the committed baseline, not to fail the build.  Absolute wall
   times are always informational; only the per-experiment ratio and the
   deterministic fields gate. *)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

open Minijson

let format_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench_diff: format error: %s\n" msg;
      exit 2)
    fmt

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> format_error "missing field %S" name)
  | _ -> format_error "expected an object holding %S" name

let to_num name = function
  | Num f -> f
  | Null -> nan
  | _ -> format_error "field %S is not a number" name

let num name j = to_num name (member name j)

(* Optional numeric field: [None] when absent or non-numeric — used for
   fields newer than some committed baselines (alloc_bytes). *)
let num_opt name = function
  | Obj fields -> (
    match List.assoc_opt name fields with Some (Num f) -> Some f | _ -> None)
  | _ -> None

let load path =
  if not (Sys.file_exists path) then format_error "no such file: %s" path;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j = try parse_json data with Parse_error m -> format_error "%s: %s" path m in
  if num "format" j <> 1.0 then format_error "%s: unknown format version" path;
  j

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

let drift = ref false

let report fmt =
  Printf.ksprintf
    (fun msg ->
      drift := true;
      Printf.printf "DRIFT  %s\n" msg)
    fmt

let info fmt = Printf.ksprintf (fun msg -> Printf.printf "ok     %s\n" msg) fmt

let wall_band_lo = 0.5
let wall_band_hi = 2.0
let wall_floor = 0.1 (* runs under 100 ms are all noise *)
let float_tol = 1e-6
let alloc_band = 2.0 (* informational only — never blocks *)
let alloc_floor = 1e6 (* runs allocating under 1 MB are all noise *)

(* (id, baseline wall, current wall) of every blocking timing regression,
   re-listed after the summary line on exit 1. *)
let wall_offenders : (string * float * float) list ref = ref []

let experiments j =
  match member "experiments" j with
  | Arr items ->
    List.map
      (fun item ->
        match member "id" item with
        | Str id -> (id, item)
        | _ -> format_error "experiment id is not a string")
      items
  | _ -> format_error "\"experiments\" is not an array"

(* Returns the ids present only in the current run: additions are
   informational (a growing suite is not drift), and the invariant
   aggregates below are compared in a mode that knows about them. *)
let compare_experiments base cur =
  let b = experiments base and c = experiments cur in
  List.iter
    (fun (id, bx) ->
      match List.assoc_opt id c with
      | None -> report "experiment %s disappeared from the current run" id
      | Some cx ->
        let b_ok = member "ok" bx = Bool true in
        let c_ok = member "ok" cx = Bool true in
        if b_ok && not c_ok then
          report "%s: paper-shape assertion regressed (ok -> not ok)" id
        else if (not b_ok) && c_ok then
          info "%s: paper-shape assertion now passes (was failing)" id;
        let b_rows = num "rows" bx and c_rows = num "rows" cx in
        if b_rows <> c_rows then
          report "%s: table shape changed (%g rows -> %g rows)" id b_rows c_rows;
        let b_wall = num "wall_seconds" bx and c_wall = num "wall_seconds" cx in
        if b_wall >= wall_floor || c_wall >= wall_floor then begin
          let ratio = if b_wall > 0.0 then c_wall /. b_wall else infinity in
          if ratio > wall_band_hi then begin
            wall_offenders := (id, b_wall, c_wall) :: !wall_offenders;
            report "%s: wall time %.3fs -> %.3fs (%.2fx, band <= %.1fx)" id
              b_wall c_wall ratio wall_band_hi
          end
          else if ratio < wall_band_lo then
            (* A big speedup is baseline staleness, not a failure. *)
            info "%s: wall time %.3fs -> %.3fs (%.2fx speedup; baseline stale?)"
              id b_wall c_wall ratio
        end;
        (match (num_opt "alloc_bytes" bx, num_opt "alloc_bytes" cx) with
        | Some b_alloc, Some c_alloc
          when b_alloc >= alloc_floor || c_alloc >= alloc_floor ->
          let ratio = if b_alloc > 0.0 then c_alloc /. b_alloc else infinity in
          if ratio > alloc_band || ratio < 1.0 /. alloc_band then
            info
              "%s: caller-domain alloc %.1f MB -> %.1f MB (%.2fx; \
               informational, never blocks)"
              id (b_alloc /. 1e6) (c_alloc /. 1e6) ratio
        | _ -> ()))
    b;
  List.filter_map
    (fun (id, _) ->
      if List.assoc_opt id b = None then begin
        info "%s: new experiment (not in baseline)" id;
        Some id
      end
      else None)
    c

(* The invariant aggregates (sample counts, violation tallies, extrema)
   sum over every experiment in the run, so a newly added experiment
   legitimately moves them without any seeded value having drifted.  When
   [new_ids] is non-empty, aggregate mismatches are therefore reported as
   informational lines naming the additions — the right fix is to
   regenerate the baseline, not to fail the build.  With no additions,
   any movement is real drift and blocks. *)
let compare_invariants ~new_ids base cur =
  let b = member "invariants" base and c = member "invariants" cur in
  let additions = String.concat ", " new_ids in
  let aggregate fmt =
    if new_ids = [] then report fmt
    else
      Printf.ksprintf
        (fun msg ->
          Printf.printf
            "ok     %s — new experiment(s) %s contribute to the aggregates; \
             regenerate BENCH_monitor.json to re-arm this check\n"
            msg additions)
        fmt
  in
  let scalar name =
    let bv = num name b and cv = num name c in
    let same =
      (Float.is_nan bv && Float.is_nan cv) || Float.abs (bv -. cv) <= float_tol
    in
    if not same then
      aggregate "invariant %s moved: %g -> %g (seeded value, must not drift)"
        name bv cv
  in
  scalar "samples";
  scalar "violations";
  scalar "honest_frac_min";
  scalar "cluster_size_max";
  scalar "overlay_degree_max";
  scalar "expansion_min";
  let tally j =
    match member "violations_by_invariant" j with
    | Obj fields ->
      List.map (fun (k, v) -> (k, to_num ("violations_by_invariant." ^ k) v)) fields
    | _ -> format_error "\"violations_by_invariant\" is not an object"
  in
  let bt = List.sort compare (tally b) and ct = List.sort compare (tally c) in
  if bt <> ct then begin
    let show t =
      String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) t)
    in
    aggregate "violation tally changed: {%s} -> {%s}" (show bt) (show ct)
  end

let () =
  let usage () =
    prerr_endline "usage: bench_diff BASELINE.json CURRENT.json";
    exit 2
  in
  match Sys.argv with
  | [| _; baseline_path; current_path |] ->
    let base = load baseline_path and cur = load current_path in
    (match (member "mode" base, member "mode" cur) with
    | Str bm, Str cm when bm <> cm ->
      format_error "mode mismatch: baseline %s vs current %s" bm cm
    | Str _, Str _ -> ()
    | _ -> format_error "\"mode\" is not a string");
    let new_ids = compare_experiments base cur in
    compare_invariants ~new_ids base cur;
    if !drift then begin
      print_endline "==> out-of-band drift against the baseline";
      List.iter
        (fun (id, b_wall, c_wall) ->
          Printf.printf "    %s: %.3fs -> %.3fs (%.2fx regression)\n" id b_wall
            c_wall (c_wall /. b_wall))
        (List.rev !wall_offenders);
      exit 1
    end
    else print_endline "==> within band"
  | _ -> usage ()
