#!/bin/sh
# Doc-coverage lint for the public interfaces of lib/adversary, lib/apps,
# lib/core,
# lib/asim, lib/audit, lib/cluster, lib/monitor, lib/scenario,
# lib/simkernel and lib/telemetry:
# every .mli must open with a module-level
# (** ... *) header, and every top-level `val`/`type`/`exception` item
# must carry an odoc comment — either ending within the three lines above
# the item (doc-above style) or following the item before the next item
# (doc-after / inline style).  This runs without odoc installed and
# complements the `dune build @doc` job in CI.
set -eu

cd "$(dirname "$0")/.."

fail=0

check_file() {
    f=$1
    if ! awk -v file="$f" '
        BEGIN { pending = ""; pending_line = 0; last_doc = -10; in_doc = 0; bad = 0 }
        {
            if (in_doc) {
                if ($0 ~ /\*\)/) { in_doc = 0; last_doc = NR; pending = "" }
                next
            }
            if ($0 ~ /\(\*\*/) {
                pending = ""
                if ($0 ~ /\*\)/) last_doc = NR; else in_doc = 1
                next
            }
            if ($0 ~ /^(val|type|exception) /) {
                if (pending != "") {
                    printf "%s:%d: undocumented: %s\n", file, pending_line, pending
                    bad = 1
                }
                pending = $0; sub(/[ \t]*$/, "", pending); pending_line = NR
                if (NR - last_doc <= 3) pending = ""
            }
        }
        END {
            if (pending != "") {
                printf "%s:%d: undocumented: %s\n", file, pending_line, pending
                bad = 1
            }
            exit bad
        }
    ' "$f"; then fail=1; fi

    case "$(head -n 1 "$f")" in
        "(**"*) ;;
        *) echo "$f:1: missing module-level (** ... *) header"; fail=1 ;;
    esac
}

for f in lib/adversary/*.mli lib/core/*.mli lib/apps/*.mli lib/asim/*.mli lib/audit/*.mli lib/cluster/*.mli lib/monitor/*.mli lib/scenario/*.mli lib/simkernel/*.mli lib/telemetry/*.mli; do
    check_file "$f"
done

if [ "$fail" -ne 0 ]; then
    echo "doc coverage check FAILED"
    exit 1
fi
echo "doc coverage OK: all public interfaces documented"
