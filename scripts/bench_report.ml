(* bench_report — render BENCH_history.jsonl (appended by
   `bench/main.exe --history FILE`) as a self-contained SVG/HTML
   dashboard of per-experiment wall time, caller-domain allocation and
   peak live words (a Gc-alarm footprint sample, present since the
   flat-arena engine landed) across runs.  All three are informational
   operator telemetry — nothing here gates.

   Usage:  dune exec scripts/bench_report.exe -- HISTORY.jsonl OUT.html

   Exit codes follow bench_diff: 0 rendered, 2 format error (missing
   file, unparsable line, wrong format version).  The document embeds
   everything (styles, charts) — no external assets — so it can be
   archived as a CI artifact and opened anywhere. *)

open Minijson

let format_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench_report: format error: %s\n" msg;
      exit 2)
    fmt

let member name = function
  | Obj fields -> (
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> format_error "missing field %S" name)
  | _ -> format_error "expected an object holding %S" name

let num name j =
  match member name j with
  | Num f -> f
  | _ -> format_error "field %S is not a number" name

let num_opt name = function
  | Obj fields -> (
    match List.assoc_opt name fields with Some (Num f) -> Some f | _ -> None)
  | _ -> None

type run = {
  mode : string;
  stamp : float;
  cells : (string * (bool * float * float option * float option)) list;
      (* id -> ok, wall seconds, alloc bytes, peak live words *)
}

let parse_line lineno line =
  let j =
    try parse_json line
    with Parse_error m -> format_error "line %d: %s" lineno m
  in
  if num "format" j <> 1.0 then
    format_error "line %d: unknown format version" lineno;
  let mode =
    match member "mode" j with
    | Str m -> m
    | _ -> format_error "line %d: \"mode\" is not a string" lineno
  in
  let cells =
    match member "experiments" j with
    | Arr items ->
      List.map
        (fun item ->
          let id =
            match member "id" item with
            | Str id -> id
            | _ -> format_error "line %d: experiment id is not a string" lineno
          in
          let ok = member "ok" item = Bool true in
          ( id,
            ( ok,
              num "wall_seconds" item,
              num_opt "alloc_bytes" item,
              num_opt "peak_live_words" item ) ))
        items
    | _ -> format_error "line %d: \"experiments\" is not an array" lineno
  in
  { mode; stamp = num "stamp" j; cells }

let load path =
  if not (Sys.file_exists path) then format_error "no such file: %s" path;
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let lines =
    String.split_on_char '\n' data
    |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then format_error "%s: empty history" path;
  List.mapi (fun i l -> parse_line (i + 1) l) lines

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let short v = Printf.sprintf "%.4g" v

let chart_w = 560.0
let chart_h = 140.0
let pad_l = 50.0
let pad_r = 12.0
let pad_t = 10.0
let pad_b = 22.0

(* One polyline over run indices (evenly spaced — runs are an ordered
   log, not a time axis), values scaled to [vlo, vhi]. *)
let polyline buf ~cls ~n ~vlo ~vhi points =
  let x i =
    if n <= 1 then pad_l +. ((chart_w -. pad_l -. pad_r) /. 2.0)
    else
      pad_l
      +. (chart_w -. pad_l -. pad_r) *. (float_of_int i /. float_of_int (n - 1))
  in
  let y v =
    chart_h -. pad_b
    -. ((chart_h -. pad_t -. pad_b) *. ((v -. vlo) /. (vhi -. vlo)))
  in
  (match points with
  | [ (i, v) ] ->
    Printf.bprintf buf "<circle class=\"dot %s\" cx=\"%.2f\" cy=\"%.2f\" r=\"3\"/>\n"
      cls (x i) (y v)
  | pts ->
    Printf.bprintf buf "<polyline class=\"%s\" points=\"%s\"/>\n" cls
      (String.concat " "
         (List.map (fun (i, v) -> Printf.sprintf "%.2f,%.2f" (x i) (y v)) pts)));
  List.iter
    (fun (i, v) ->
      Printf.bprintf buf
        "<circle class=\"hit\" cx=\"%.2f\" cy=\"%.2f\" r=\"7\"><title>run \
         %d: %s</title></circle>\n"
        (x i) (y v) (i + 1)
        (html_escape (short v)))
    points

let card buf ~id ~n walls allocs lives oks =
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "<section class=\"card\">\n<header>\n<div>\n<h3>%s</h3>\n"
    (html_escape id);
  let failures = List.length (List.filter (fun (_, ok) -> not ok) oks) in
  bpf "<p class=\"labels\">wall seconds per run%s%s</p>\n"
    (match allocs with [] -> "" | _ -> " · alloc MB dashed, own scale")
    (match lives with [] -> "" | _ -> " · live Mwords dotted, own scale");
  bpf "</div>\n";
  (match List.rev walls with
  | (_, last) :: _ -> bpf "<p class=\"hero\">%ss</p>\n" (html_escape (short last))
  | [] -> ());
  bpf "</header>\n";
  bpf
    "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"%s wall time \
     across runs\">\n"
    chart_w chart_h (html_escape id);
  let values = List.map snd walls in
  let vlo = List.fold_left min infinity values in
  let vhi = List.fold_left max neg_infinity values in
  let vlo, vhi = if vhi > vlo then (vlo, vhi) else (vlo -. 0.5, vhi +. 0.5) in
  let span = vhi -. vlo in
  let vlo = vlo -. (0.08 *. span) and vhi = vhi +. (0.08 *. span) in
  let y v =
    chart_h -. pad_b
    -. ((chart_h -. pad_t -. pad_b) *. ((v -. vlo) /. (vhi -. vlo)))
  in
  let gridline v =
    bpf
      "<line class=\"grid\" x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\"/>\n\
       <text class=\"tick\" x=\"%.2f\" y=\"%.2f\" text-anchor=\"end\">%s</text>\n"
      pad_l (y v) (chart_w -. pad_r) (y v) (pad_l -. 5.0) (y v +. 3.0)
      (html_escape (short v))
  in
  gridline vhi;
  gridline ((vlo +. vhi) /. 2.0);
  bpf
    "<line class=\"baseline\" x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\"/>\n"
    pad_l (chart_h -. pad_b) (chart_w -. pad_r) (chart_h -. pad_b);
  bpf "<text class=\"tick\" x=\"%.2f\" y=\"%.2f\">run 1</text>\n" pad_l
    (chart_h -. 6.0);
  bpf
    "<text class=\"tick\" x=\"%.2f\" y=\"%.2f\" text-anchor=\"end\">run \
     %d</text>\n"
    (chart_w -. pad_r) (chart_h -. 6.0) n;
  (* Alloc and live-words trends on their own scales, drawn first so
     wall stays on top. *)
  let own_scale cls = function
    | [] -> ()
    | pts ->
      let vs = List.map snd pts in
      let lo = List.fold_left min infinity vs in
      let hi = List.fold_left max neg_infinity vs in
      let lo, hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
      polyline buf ~cls ~n ~vlo:lo ~vhi:hi pts
  in
  own_scale "live" lives;
  own_scale "alloc" allocs;
  polyline buf ~cls:"series" ~n ~vlo ~vhi walls;
  List.iter
    (fun (i, ok) ->
      if not ok then
        let x =
          if n <= 1 then pad_l +. ((chart_w -. pad_l -. pad_r) /. 2.0)
          else
            pad_l
            +. (chart_w -. pad_l -. pad_r)
               *. (float_of_int i /. float_of_int (n - 1))
        in
        bpf
          "<circle class=\"breach\" cx=\"%.2f\" cy=\"%.2f\" r=\"4\"><title>run \
           %d: paper-shape assertion failed</title></circle>\n"
          x (chart_h -. pad_b) (i + 1))
    oks;
  bpf "</svg>\n";
  let stats values unit =
    let n = List.length values in
    if n = 0 then ""
    else
      let sorted = List.sort compare values in
      Printf.sprintf "<span>min %s%s</span><span>max %s%s</span>"
        (html_escape (short (List.nth sorted 0)))
        unit
        (html_escape (short (List.nth sorted (n - 1))))
        unit
  in
  bpf "<p class=\"stats\">%s%s%s<span>%d runs</span>" (stats values "s")
    (match allocs with
    | [] -> ""
    | al -> stats (List.map snd al) "&nbsp;MB alloc")
    (match lives with
    | [] -> ""
    | lv -> stats (List.map snd lv) "&nbsp;Mw live")
    n;
  if failures > 0 then
    bpf "<span class=\"crit\">&#10007; %d failing runs</span>" failures;
  bpf "</p>\n</section>\n"

let style =
  {css|
:root {
  color-scheme: light;
  --page: #f9f9f7; --surface-1: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --critical: #d03b3b; --good: #006300;
  --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page: #0d0d0d; --surface-1: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --critical: #d03b3b; --good: #0ca30c;
    --ring: rgba(255,255,255,0.10);
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 20px; margin: 0 0 4px; }
h3 { font-size: 13px; font-weight: 600; margin: 0; }
.meta { color: var(--ink-2); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 18px; }
.tile { background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; min-width: 150px; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.tile .v { font-size: 24px; font-weight: 600; }
.grid-cards { display: grid; gap: 14px;
  grid-template-columns: repeat(auto-fill, minmax(340px, 1fr)); }
.card { background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 14px; }
.card header { display: flex; justify-content: space-between; gap: 10px;
  align-items: baseline; margin-bottom: 6px; }
.card .labels { color: var(--ink-2); font-size: 11px; margin: 2px 0 0; }
.card .hero { font-size: 22px; font-weight: 600; margin: 0;
  white-space: nowrap; }
.card svg { width: 100%; height: auto; display: block; }
.card .stats { display: flex; gap: 14px; color: var(--ink-2); font-size: 11px;
  margin: 6px 0 0; font-variant-numeric: tabular-nums; }
.card .stats .crit { color: var(--critical); font-weight: 600; }
.grid { stroke: var(--grid); stroke-width: 1; }
.baseline { stroke: var(--baseline); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.series { fill: none; stroke: var(--series-1); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round; }
.alloc { fill: none; stroke: var(--muted); stroke-width: 1.5;
  stroke-dasharray: 5 4; }
.live { fill: none; stroke: var(--good); stroke-width: 1.5;
  stroke-dasharray: 2 4; }
.dot.series { fill: var(--series-1); stroke: none; }
.dot.alloc { fill: var(--muted); stroke: none; }
.dot.live { fill: var(--good); stroke: none; }
.breach { fill: var(--critical); stroke: var(--surface-1); stroke-width: 2; }
.hit { fill: transparent; }
.hit:hover { fill: var(--series-1); fill-opacity: 0.25; }
|css}

let render runs =
  let n = List.length runs in
  let ids =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map fst r.cells) runs)
  in
  let buf = Buffer.create 65536 in
  let bpf fmt = Printf.bprintf buf fmt in
  bpf
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
     <title>nowlib bench history</title>\n<style>%s</style>\n</head>\n<body>\n"
    style;
  bpf "<h1>nowlib bench history</h1>\n";
  let last = List.nth runs (n - 1) in
  bpf
    "<p class=\"meta\">per-experiment wall time, caller-domain allocation and \
     peak live words across recorded bench runs · latest: %s mode, stamp \
     %.0f</p>\n"
    (html_escape last.mode) last.stamp;
  bpf "<div class=\"tiles\">\n";
  bpf
    "<div class=\"tile\"><div class=\"k\">runs</div><div \
     class=\"v\">%d</div></div>\n"
    n;
  bpf
    "<div class=\"tile\"><div class=\"k\">experiments</div><div \
     class=\"v\">%d</div></div>\n"
    (List.length ids);
  let total_wall =
    List.fold_left (fun acc (_, (_, w, _, _)) -> acc +. w) 0.0 last.cells
  in
  bpf
    "<div class=\"tile\"><div class=\"k\">latest total wall</div><div \
     class=\"v\">%ss</div></div>\n"
    (html_escape (short total_wall));
  bpf "</div>\n<div class=\"grid-cards\">\n";
  List.iter
    (fun id ->
      let walls = ref [] and allocs = ref [] and lives = ref [] in
      let oks = ref [] in
      List.iteri
        (fun i r ->
          match List.assoc_opt id r.cells with
          | None -> ()
          | Some (ok, wall, alloc, live) ->
            walls := (i, wall) :: !walls;
            oks := (i, ok) :: !oks;
            (match alloc with
            | Some a -> allocs := (i, a /. 1e6) :: !allocs
            | None -> ());
            (match live with
            | Some lw -> lives := (i, lw /. 1e6) :: !lives
            | None -> ()))
        runs;
      card buf ~id ~n (List.rev !walls) (List.rev !allocs) (List.rev !lives)
        (List.rev !oks))
    ids;
  bpf "</div>\n</body>\n</html>\n";
  Buffer.contents buf

let () =
  match Sys.argv with
  | [| _; history_path; out_path |] ->
    let runs = load history_path in
    let html = render runs in
    let oc = open_out out_path in
    output_string oc html;
    close_out oc;
    Printf.printf "bench_report: %d runs, wrote %s\n" (List.length runs)
      out_path
  | _ ->
    prerr_endline "usage: bench_report HISTORY.jsonl OUT.html";
    exit 2
