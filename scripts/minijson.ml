(* A minimal JSON reader (objects, arrays, strings, numbers, booleans,
   null) — just enough for the fixed shapes bench/main.ml writes
   (BENCH_monitor.json, BENCH_history.jsonl), with no dependencies beyond
   the stdlib.  Shared by bench_diff and bench_report. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (* The writer never emits non-ASCII; decode the BMP code point
             naively as a byte when it fits, else a '?'. *)
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          Buffer.add_char buf (if code < 128 then Char.chr code else '?')
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v
