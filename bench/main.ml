(* Benchmark harness: regenerates every table/figure reproduction (the
   experiment suite E1-E15, F1-F2 and ablations A1-A2 of DESIGN.md) and runs one Bechamel
   micro-benchmark per experiment, measuring the protocol operation at the
   heart of that experiment.

   Usage:  dune exec bench/main.exe -- [--full] [--skip-micro]
                                       [--monitor-json FILE] [-j N] [IDS...]
     --full        run experiments at EXPERIMENTS.md scale (slow)
     --skip-micro  skip the Bechamel micro-benchmarks
     --monitor-json FILE
                   run the experiments under the invariant monitor and
                   write per-experiment wall times + the invariant summary
                   to FILE (scripts/bench_diff.ml compares two such files;
                   the committed baseline is BENCH_monitor.json).  Stdout
                   is unchanged — wall times live only in the file.
     -j N          worker domains for the Exec pool (default: available
                   cores; -j 1 reproduces the sequential run — tables are
                   byte-identical either way)
     IDS           experiment ids (default: all of E1..E15 F1 F2 A1 A2) *)

open Bechamel

module Engine = Now_core.Engine
module Node = Now_core.Node
module Params = Now_core.Params
module Rng = Prng.Rng

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures                                            *)
(* ------------------------------------------------------------------ *)

let population rng n tau =
  List.init n (fun _ -> if Rng.bernoulli rng tau then Node.Byzantine else Node.Honest)

let small_engine ?(walk_mode = Params.Direct_sample) ?(shuffle = true) () =
  let params =
    Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 ~walk_mode
      ~shuffle_on_churn:shuffle ()
  in
  let rng = Rng.create 42L in
  Engine.create ~seed:42L params ~initial:(population rng 300 0.15)

(* Each test measures the dominant operation of its experiment.

   Fixture discipline: every fixture goes through Test.make_with_resource,
   so it is allocated when *that* benchmark starts — never shared between
   benchmarks, which would make results depend on the order the tests run
   in.  The two cheap message-level configs (F2, E12) additionally use
   Test.multiple: a structurally fresh config per run, so those numbers
   cannot drift at all.  Engine fixtures use Test.uniq — allocating a
   full engine per run would dominate the measurement — which shares the
   engine across the runs of one benchmark only; each such test's
   measured operation is stationary (join+leave and add+remove pairs keep
   the population constant, exchange preserves cluster composition
   distribution, adversary drivers run at their steady state), so the
   per-run cost does not drift within the benchmark. *)
let uniq_test ~name ~allocate fn =
  Test.make_with_resource ~name Test.uniq ~allocate ~free:ignore
    (Staged.stage fn)

let multiple_test ~name ~allocate fn =
  Test.make_with_resource ~name Test.multiple ~allocate ~free:ignore
    (Staged.stage fn)

let micro_tests () =
  (* E1: exchange resamples a cluster's membership from the population —
     composition is stationary across iterations. *)
  let e1 =
    uniq_test ~name:"E1 full cluster exchange"
      ~allocate:(fun () -> (small_engine (), Rng.of_int 1))
      (fun (engine, rng) ->
        let tbl = Engine.table engine in
        let cid = Now_core.Cluster_table.uniform_cluster tbl rng in
        ignore (Engine.exchange_cluster engine cid))
  in
  (* E2/A1: a fair join/leave coin keeps the population stationary. *)
  let e2 =
    uniq_test ~name:"E2 neutral churn step"
      ~allocate:(fun () -> (small_engine (), Rng.of_int 2))
      (fun (engine, rng) ->
        if Rng.bool rng then ignore (Engine.join engine Node.Honest)
        else ignore (Engine.leave engine (Engine.random_node engine)))
  in
  (* E3/E10/E11: adversary steps alternate joins and leaves around a fixed
     target size, so the driver operates at its steady state. *)
  let e3 =
    uniq_test ~name:"E3 targeted-attack step"
      ~allocate:(fun () ->
        let engine = small_engine () in
        Adversary.create ~tau:0.15 ~strategy:Adversary.Target_cluster engine)
      Adversary.step
  in
  (* E4: add+remove pairs keep the vertex count stationary. *)
  let e4 =
    uniq_test ~name:"E4 overlay add+remove vertex"
      ~allocate:(fun () ->
        let over =
          Over.create ~rng:(Rng.of_int 40) ~target_degree:(fun ~n_vertices ->
              min (n_vertices - 1) 8)
        in
        Over.init_erdos_renyi over ~vertices:(List.init 64 (fun i -> i));
        (over, Rng.of_int 4, ref 1000))
      (fun (over, rng, next) ->
        let pick () =
          let vs = Array.of_list (Dsgraph.Graph.vertices (Over.graph over)) in
          vs.(Rng.int rng (Array.length vs))
        in
        incr next;
        Over.add_vertex over !next ~pick;
        Over.remove_vertex over (pick ()) ~pick)
  in
  (* E5/A2: randCl only reads the cluster table. *)
  let e5 =
    uniq_test ~name:"E5 randCl (exact biased CTRW)"
      ~allocate:(fun () -> small_engine ~walk_mode:Params.Exact_walk ())
      (fun engine -> ignore (Engine.rand_cl engine ()))
  in
  (* E6 measures allocation itself, so there is no fixture to share. *)
  let e6 =
    Test.make ~name:"E6 initialisation (n0=128)"
      (Staged.stage (fun () ->
           let params = Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 () in
           let rng = Rng.create 6L in
           ignore (Engine.create ~seed:6L params ~initial:(population rng 128 0.15))))
  in
  let e7 =
    uniq_test ~name:"E7 join+leave pair"
      ~allocate:(fun () -> small_engine ())
      (fun engine ->
        ignore (Engine.join engine Node.Honest);
        ignore (Engine.leave engine (Engine.random_node engine)))
  in
  (* E8: broadcast reads the cluster structure, mutates nothing. *)
  let e8 =
    uniq_test ~name:"E8 clustered broadcast"
      ~allocate:(fun () -> small_engine ())
      (fun engine ->
        ignore (Apps.Broadcast.run engine ~origin:(Engine.random_node engine)))
  in
  (* E9: the walk does not mutate the graph. *)
  let e9 =
    uniq_test ~name:"E9 plain CTRW walk"
      ~allocate:(fun () -> (Dsgraph.Gen.ring ~n:64, Rng.of_int 9))
      (fun (graph, rng) ->
        ignore (Randwalk.Ctrw.walk graph rng ~start:0 ~duration:12.0 ()))
  in
  let e10 =
    uniq_test ~name:"E10 grow-shrink sweep step"
      ~allocate:(fun () ->
        let engine = small_engine () in
        Adversary.create ~tau:0.15 ~strategy:(Adversary.Grow_shrink 64) engine)
      Adversary.step
  in
  let f1 =
    uniq_test ~name:"F1 maintenance op (vs init)"
      ~allocate:(fun () -> small_engine ())
      (fun engine ->
        ignore (Engine.join engine Node.Honest);
        ignore (Engine.leave engine (Engine.random_node engine)))
  in
  (* F2/E12: configs are cheap — build a structurally fresh one per run so
     the message-level numbers cannot drift by construction. *)
  let f2 =
    multiple_test ~name:"F2 message-level exchange of one node"
      ~allocate:(fun () ->
        Cluster.Config.build_uniform ~rng:(Rng.of_int 12) ~n_clusters:4
          ~cluster_size:9 ~byz_per_cluster:2 ~overlay_degree:3 ())
      (fun cfg ->
        match Cluster.Exchange.exchange_node cfg ~node:3 with
        | Ok _ -> ()
        | Error _ -> ())
  in
  let e11 =
    uniq_test ~name:"E11 step under 1/r adversary"
      ~allocate:(fun () ->
        let params =
          Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.25 ~epsilon:0.05
            ~walk_mode:Params.Direct_sample ()
        in
        let rng = Rng.create 43L in
        let engine = Engine.create ~seed:43L params ~initial:(population rng 300 0.25) in
        Adversary.create ~tau:0.25 ~strategy:Adversary.Target_cluster engine)
      Adversary.step
  in
  let a1 =
    uniq_test ~name:"A1 churn step (rejoin-self merges)"
      ~allocate:(fun () ->
        let params =
          Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15
            ~walk_mode:Params.Direct_sample ~merge_policy:Params.Rejoin_self ()
        in
        let rng = Rng.create 44L in
        (Engine.create ~seed:44L params ~initial:(population rng 300 0.15),
         Rng.of_int 45))
      (fun (engine, rng) ->
        if Rng.bool rng then ignore (Engine.join engine Node.Honest)
        else ignore (Engine.leave engine (Engine.random_node engine)))
  in
  let a2 =
    uniq_test ~name:"A2 randCl with doubled duration"
      ~allocate:(fun () ->
        let params =
          Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 ~walk_duration_c:4.0
            ~walk_mode:Params.Exact_walk ()
        in
        let rng = Rng.create 46L in
        Engine.create ~seed:46L params ~initial:(population rng 300 0.15))
      (fun engine -> ignore (Engine.rand_cl engine ()))
  in
  let e12 =
    multiple_test ~name:"E12 message-level join+leave (end-to-end)"
      ~allocate:(fun () ->
        Cluster.Config.build_uniform ~rng:(Rng.of_int 47) ~n_clusters:5
          ~cluster_size:10 ~byz_per_cluster:1 ~overlay_degree:3 ())
      (fun cfg ->
        (* Fresh config per run, so a fixed joiner id is never a duplicate. *)
        (match Cluster.Ops.join cfg ~node:500_001 ~contact:0 () with
        | Ok _ -> ()
        | Error _ -> ());
        match Cluster.Ops.leave cfg ~node:500_001 () with
        | Ok _ -> ()
        | Error _ -> ())
  in
  (* E13: one validated transfer against an equivocating minority — the
     fault-injection path of the message engine. *)
  let e13 =
    multiple_test ~name:"E13 validated transfer vs equivocating minority"
      ~allocate:(fun () ->
        Cluster.Config.build_uniform ~rng:(Rng.of_int 48)
          ~behavior:(fun node -> Agreement.Byz_behavior.Equivocate (node + 1, node + 2))
          ~n_clusters:2 ~cluster_size:15 ~byz_per_cluster:4 ~overlay_degree:1 ())
      (fun cfg ->
        ignore (Cluster.Valchan.transmit cfg ~src_cluster:0 ~dst_cluster:1 ~payload:7 ()))
  in
  (* E14: one asynchronous validated transfer under bounded jitter — the
     discrete-event engine's hot path (heap scheduling + delay draws). *)
  let e14 =
    multiple_test ~name:"E14 async validated transfer (uniform jitter)"
      ~allocate:(fun () ->
        let cfg =
          Cluster.Config.build_uniform ~rng:(Rng.of_int 49) ~n_clusters:2
            ~cluster_size:15 ~byz_per_cluster:0 ~overlay_degree:1 ()
        in
        Asim.Session.create ~rng:(Rng.of_int 50)
          ~delay:(Asim.Delay.Uniform { mean = 1.0 }) cfg)
      (fun s ->
        ignore (Asim.Session.transmit s ~src_cluster:0 ~dst_cluster:1 ~payload:7 ()))
  in
  (* E15: one system-wide sharded exchange epoch — the flat arena's scale
     path (per-cluster plans over the Exec pool, sequential apply).
     Swaps preserve cluster composition, so the fixture is stationary. *)
  let e15 =
    uniq_test ~name:"E15 sharded exchange epoch"
      ~allocate:(fun () -> small_engine ())
      (fun engine -> ignore (Engine.exchange_epoch engine))
  in
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; f1; f2; a1; a2 ]

(* ------------------------------------------------------------------ *)
(* Per-experiment primitive breakdown (trace collector)                 *)
(* ------------------------------------------------------------------ *)

(* The dominant operation of each experiment family, run once on a small
   seeded fixture under the trace collector; the rows show which
   primitives the operation spends its message budget on.  Sequential and
   fully seeded, so the table is byte-identical across runs and -j values
   (the CI determinism gate diffs it along with the experiment tables). *)
let breakdown_ops =
  [
    ( "E1/E2",
      "exchange(C)",
      fun () ->
        let engine = small_engine () in
        let tbl = Engine.table engine in
        let cid = Now_core.Cluster_table.uniform_cluster tbl (Rng.of_int 1) in
        ignore (Engine.exchange_cluster engine cid) );
    ( "E5/A2",
      "randCl (exact)",
      fun () ->
        let engine = small_engine ~walk_mode:Params.Exact_walk () in
        ignore (Engine.rand_cl engine ()) );
    ( "E7/F1",
      "join+leave",
      fun () ->
        let engine = small_engine () in
        ignore (Engine.join engine Node.Honest);
        ignore (Engine.leave engine (Engine.random_node engine)) );
    ( "F2",
      "msg exchange(x)",
      fun () ->
        let cfg =
          Cluster.Config.build_uniform ~rng:(Rng.of_int 12) ~n_clusters:4
            ~cluster_size:9 ~byz_per_cluster:2 ~overlay_degree:3 ()
        in
        match Cluster.Exchange.exchange_node cfg ~node:3 with
        | Ok _ | Error _ -> () );
    ( "E12",
      "msg join+leave",
      fun () ->
        let cfg =
          Cluster.Config.build_uniform ~rng:(Rng.of_int 47) ~n_clusters:5
            ~cluster_size:10 ~byz_per_cluster:1 ~overlay_degree:3 ()
        in
        (match Cluster.Ops.join cfg ~node:500_001 ~contact:0 () with
        | Ok _ | Error _ -> ());
        match Cluster.Ops.leave cfg ~node:500_001 () with
        | Ok _ | Error _ -> () );
    ( "E13",
      "valchan vs byz",
      fun () ->
        let cfg =
          Cluster.Config.build_uniform ~rng:(Rng.of_int 48)
            ~behavior:(fun node ->
              Agreement.Byz_behavior.Equivocate (node + 1, node + 2))
            ~n_clusters:2 ~cluster_size:15 ~byz_per_cluster:4 ~overlay_degree:1 ()
        in
        ignore
          (Cluster.Valchan.transmit cfg ~src_cluster:0 ~dst_cluster:1 ~payload:7 ()) );
    ( "E14",
      "async valchan",
      fun () ->
        let cfg =
          Cluster.Config.build_uniform ~rng:(Rng.of_int 49) ~n_clusters:2
            ~cluster_size:15 ~byz_per_cluster:0 ~overlay_degree:1 ()
        in
        let s =
          Asim.Session.create ~rng:(Rng.of_int 50)
            ~delay:(Asim.Delay.Uniform { mean = 1.0 }) cfg
        in
        ignore (Asim.Session.transmit s ~src_cluster:0 ~dst_cluster:1 ~payload:7 ()) );
    ( "E15",
      "exchange epoch",
      fun () ->
        let engine = small_engine () in
        ignore (Engine.exchange_epoch engine) );
  ]

let run_breakdown () =
  let table =
    Metrics.Table.create
      ~title:"primitive breakdown per experiment (top 3 by self messages)"
      ~columns:
        [ "experiment"; "operation"; "primitive"; "spans"; "self msgs"; "self rounds" ]
  in
  List.iter
    (fun (experiment, op, f) ->
      let (), dump = Trace.profiled f in
      let rows = Trace.Report.table_rows (Trace.Report.of_dump dump) in
      List.iteri
        (fun i (name, spans, self_msgs, self_rounds) ->
          if i < 3 then
            Metrics.Table.add_row table
              [
                Metrics.Table.S experiment; Metrics.Table.S op;
                Metrics.Table.S name; Metrics.Table.I spans;
                Metrics.Table.I self_msgs; Metrics.Table.I self_rounds;
              ])
        rows)
    breakdown_ops;
  Metrics.Table.print table

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (one per experiment) ==";
  let tests = micro_tests () in
  let grouped = Test.make_grouped ~name:"now" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Metrics.Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time per run"; "r^2" ]
  in
  List.iter
    (fun (name, est) ->
      let ns = Analyze.OLS.estimates est in
      let time_ns = match ns with Some (t :: _) -> t | _ -> nan in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square est with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Metrics.Table.add_row table
        [ Metrics.Table.S name; Metrics.Table.S pretty; Metrics.Table.S r2 ])
    rows;
  Metrics.Table.print table

(* ------------------------------------------------------------------ *)
(* Invariant/timing summary (--monitor-json)                           *)
(* ------------------------------------------------------------------ *)

(* BENCH_monitor.json: per-experiment wall time + allocation + the run's
   invariant summary, consumed by scripts/bench_diff.ml.  The wall times
   and caller-domain allocation deltas are the only nondeterministic
   fields — the comparator treats wall times leniently (a drift band)
   and allocation informationally, while the invariant aggregates are
   seeded and must match the baseline exactly. *)
let write_monitor_json ~path ~mode ~results ~timings store =
  let buf = Buffer.create 4096 in
  let fr = Monitor.Store.float_repr in
  Buffer.add_string buf "{\n  \"format\": 1,\n";
  Buffer.add_string buf (Printf.sprintf "  \"mode\": %S,\n" mode);
  Buffer.add_string buf "  \"experiments\": [\n";
  let sorted =
    List.sort
      (fun a b -> compare a.Harness.Common.id b.Harness.Common.id)
      results
  in
  let rows_of r =
    let csv = String.trim (Metrics.Table.to_csv r.Harness.Common.table) in
    max 0 (List.length (String.split_on_char '\n' csv) - 1)
  in
  let last = List.length sorted - 1 in
  List.iteri
    (fun i r ->
      let id = r.Harness.Common.id in
      let wall, alloc, _ =
        try Hashtbl.find timings id with Not_found -> (0.0, 0.0, 0.0)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"ok\": %b, \"rows\": %d, \"wall_seconds\": \
            %.3f, \"alloc_bytes\": %.0f}%s\n"
           id r.Harness.Common.ok (rows_of r) wall alloc
           (if i = last then "" else ",")))
    sorted;
  Buffer.add_string buf "  ],\n";
  let samples = Monitor.Store.samples store in
  let agg series op init =
    List.fold_left
      (fun acc (s : Monitor.Store.sample) ->
        if s.Monitor.Store.series = series then op acc s.Monitor.Store.value
        else acc)
      init samples
  in
  let field name v =
    Printf.sprintf "    %S: %s,\n" name
      (if Float.is_finite v then fr v else "null")
  in
  Buffer.add_string buf "  \"invariants\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"samples\": %d,\n" (Monitor.Store.n_samples store));
  Buffer.add_string buf
    (Printf.sprintf "    \"violations\": %d,\n"
       (Monitor.Store.n_violations store));
  Buffer.add_string buf
    (field "honest_frac_min" (agg "cluster.honest_frac.min" min infinity));
  Buffer.add_string buf
    (field "cluster_size_max" (agg "cluster.size.max" max neg_infinity));
  Buffer.add_string buf
    (field "overlay_degree_max" (agg "overlay.degree.max" max neg_infinity));
  Buffer.add_string buf
    (field "expansion_min" (agg "overlay.expansion.lower" min infinity));
  let tally =
    List.fold_left
      (fun acc (v : Monitor.Store.violation) ->
        match acc with
        | (inv, n) :: rest when inv = v.Monitor.Store.invariant ->
          (inv, n + 1) :: rest
        | _ -> (v.Monitor.Store.invariant, 1) :: acc)
      []
      (Monitor.Store.violations store)
    |> List.rev
  in
  Buffer.add_string buf "    \"violations_by_invariant\": {";
  List.iteri
    (fun i (inv, n) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%S: %d" (if i = 0 then "" else ", ") inv n))
    tally;
  Buffer.add_string buf "}\n  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_history.jsonl: one appended line per --history run — the perf
   trajectory scripts/bench_report.ml renders.  Opt-in (a plain bench run
   never touches the file), and stamped with real time: the history file
   is an operator log, not a gated artifact.  peak_live_words (format 1,
   optional field) carries the Gc-alarm footprint sample; like wall and
   alloc it is rendered informationally and never compared. *)
let append_history ~path ~mode ~results ~timings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"format\": 1, \"mode\": %S, \"stamp\": %.0f, \
                     \"experiments\": ["
       mode (Unix.time ()));
  let sorted =
    List.sort
      (fun a b -> compare a.Harness.Common.id b.Harness.Common.id)
      results
  in
  List.iteri
    (fun i r ->
      let id = r.Harness.Common.id in
      let wall, alloc, live =
        try Hashtbl.find timings id with Not_found -> (0.0, 0.0, 0.0)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "%s{\"id\": %S, \"ok\": %b, \"wall_seconds\": %.3f, \
            \"alloc_bytes\": %.0f, \"peak_live_words\": %.0f}"
           (if i = 0 then "" else ", ")
           id r.Harness.Common.ok wall alloc live))
    sorted;
  Buffer.add_string buf "]}\n";
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "appended history entry to %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let skip_micro = List.mem "--skip-micro" args in
  let rec parse_jobs = function
    | [] -> None
    | ("-j" | "--jobs") :: n :: _ -> (
      match int_of_string_opt n with
      | Some j when j >= 1 -> Some j
      | _ -> failwith (Printf.sprintf "bench: -j expects a positive integer, got %S" n))
    | ("-j" | "--jobs") :: [] -> failwith "bench: -j expects an argument"
    | _ :: rest -> parse_jobs rest
  in
  (match parse_jobs args with
  | Some j -> Exec.set_default_jobs j
  | None -> ());
  let rec parse_monitor_json = function
    | [] -> None
    | "--monitor-json" :: path :: _ -> Some path
    | [ "--monitor-json" ] -> failwith "bench: --monitor-json expects an argument"
    | _ :: rest -> parse_monitor_json rest
  in
  let monitor_json = parse_monitor_json args in
  let rec parse_history = function
    | [] -> None
    | "--history" :: path :: _ -> Some path
    | [ "--history" ] -> failwith "bench: --history expects an argument"
    | _ :: rest -> parse_history rest
  in
  let history = parse_history args in
  let ids =
    let rec strip = function
      | [] -> []
      | ("-j" | "--jobs" | "--monitor-json" | "--history") :: _ :: rest ->
        strip rest
      | a :: rest ->
        if String.length a >= 2 && String.sub a 0 2 = "--" then strip rest
        else a :: strip rest
    in
    strip args
  in
  let mode = if full then Harness.Common.Full else Harness.Common.Quick in
  (* Note: the job count is deliberately not echoed — the whole point is
     that the output is byte-identical for any -j, and the CI determinism
     gate diffs these outputs across -j values. *)
  Printf.printf
    "NOW/OVER reproduction bench — experiments %s in %s mode\n\n%!"
    (match ids with [] -> "E1..E15, F1, F2, A1, A2" | _ -> String.concat ", " ids)
    (if full then "FULL" else "QUICK");
  let timings = Hashtbl.create 32 in
  let timings_mu = Mutex.create () in
  (* Wall time plus the wrapping domain's allocation delta.  Experiments
     fan their cells out over the Exec pool, so the delta under-counts
     worker-domain allocation — it tracks the caller-side share, which is
     stable enough to trend (and flagged informational in bench_diff).
     Peak live words is sampled at major-collection boundaries (a Gc
     alarm) plus one post-run full major — a process-wide footprint
     measure, so concurrent experiments see each other's heap; like wall
     and alloc it is informational only and never enters a gated byte. *)
  let wrap id f =
    let a0 = Gc.allocated_bytes () in
    let peak = ref 0 in
    let note () =
      let lw = (Gc.quick_stat ()).Gc.live_words in
      if lw > !peak then peak := lw
    in
    let alarm = Gc.create_alarm note in
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    Gc.delete_alarm alarm;
    Gc.full_major ();
    note ();
    let da = Gc.allocated_bytes () -. a0 in
    Mutex.lock timings_mu;
    Hashtbl.replace timings id (dt, da, float_of_int !peak);
    Mutex.unlock timings_mu;
    r
  in
  let store =
    match monitor_json with None -> None | Some _ -> Some (Monitor.create ())
  in
  let results =
    match store with
    | None -> Harness.Registry.run_ids ~wrap ~mode ids
    | Some m ->
      Monitor.with_monitor m (fun () ->
          Harness.Registry.run_ids ~wrap ~mode ids)
  in
  let ok = List.length (List.filter (fun r -> r.Harness.Common.ok) results) in
  Printf.printf "==> %d/%d experiments reproduce the paper's shape.\n\n%!" ok
    (List.length results);
  (match (store, monitor_json) with
  | Some m, Some path ->
    write_monitor_json ~path ~mode:(if full then "full" else "quick") ~results
      ~timings m
  | _ -> ());
  (match history with
  | Some path ->
    append_history ~path ~mode:(if full then "full" else "quick") ~results
      ~timings
  | None -> ());
  run_breakdown ();
  if not skip_micro then run_micro ();
  if ok < List.length results then exit 1
