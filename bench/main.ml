(* Benchmark harness: regenerates every table/figure reproduction (the
   experiment suite E1-E12, F1-F2 and ablations A1-A2 of DESIGN.md) and runs one Bechamel
   micro-benchmark per experiment, measuring the protocol operation at the
   heart of that experiment.

   Usage:  dune exec bench/main.exe -- [--full] [--skip-micro] [IDS...]
     --full        run experiments at EXPERIMENTS.md scale (slow)
     --skip-micro  skip the Bechamel micro-benchmarks
     IDS           experiment ids (default: all of E1..E12 F1 F2 A1 A2) *)

open Bechamel

module Engine = Now_core.Engine
module Node = Now_core.Node
module Params = Now_core.Params
module Rng = Prng.Rng

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures                                            *)
(* ------------------------------------------------------------------ *)

let population rng n tau =
  List.init n (fun _ -> if Rng.bernoulli rng tau then Node.Byzantine else Node.Honest)

let small_engine ?(walk_mode = Params.Direct_sample) ?(shuffle = true) () =
  let params =
    Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 ~walk_mode
      ~shuffle_on_churn:shuffle ()
  in
  let rng = Rng.create 42L in
  Engine.create ~seed:42L params ~initial:(population rng 300 0.15)

(* Each test measures the dominant operation of its experiment.  Engines
   are shared across iterations; join/leave pairs keep the population
   stationary so the measured cost does not drift. *)
let micro_tests () =
  let e1_engine = small_engine () in
  let e1 =
    Test.make ~name:"E1 full cluster exchange"
      (Staged.stage (fun () ->
           let tbl = Engine.table e1_engine in
           let cid = Now_core.Cluster_table.uniform_cluster tbl (Rng.of_int 1) in
           ignore (Engine.exchange_cluster e1_engine cid)))
  in
  let e2_engine = small_engine () in
  let e2_rng = Rng.of_int 2 in
  let e2 =
    Test.make ~name:"E2 neutral churn step"
      (Staged.stage (fun () ->
           if Rng.bool e2_rng then ignore (Engine.join e2_engine Node.Honest)
           else ignore (Engine.leave e2_engine (Engine.random_node e2_engine))))
  in
  let e3_engine = small_engine () in
  let e3_driver =
    Adversary.create ~tau:0.15 ~strategy:Adversary.Target_cluster e3_engine
  in
  let e3 =
    Test.make ~name:"E3 targeted-attack step"
      (Staged.stage (fun () -> Adversary.step e3_driver))
  in
  let e4_rng = Rng.of_int 4 in
  let e4_over =
    let o =
      Over.create ~rng:(Rng.of_int 40) ~target_degree:(fun ~n_vertices ->
          min (n_vertices - 1) 8)
    in
    Over.init_erdos_renyi o ~vertices:(List.init 64 (fun i -> i));
    o
  in
  let e4_next = ref 1000 in
  let e4_pick () =
    let vs = Array.of_list (Dsgraph.Graph.vertices (Over.graph e4_over)) in
    vs.(Rng.int e4_rng (Array.length vs))
  in
  let e4 =
    Test.make ~name:"E4 overlay add+remove vertex"
      (Staged.stage (fun () ->
           incr e4_next;
           Over.add_vertex e4_over !e4_next ~pick:e4_pick;
           Over.remove_vertex e4_over (e4_pick ()) ~pick:e4_pick))
  in
  let e5_engine = small_engine ~walk_mode:Params.Exact_walk () in
  let e5 =
    Test.make ~name:"E5 randCl (exact biased CTRW)"
      (Staged.stage (fun () -> ignore (Engine.rand_cl e5_engine ())))
  in
  let e6 =
    Test.make ~name:"E6 initialisation (n0=128)"
      (Staged.stage (fun () ->
           let params = Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 () in
           let rng = Rng.create 6L in
           ignore (Engine.create ~seed:6L params ~initial:(population rng 128 0.15))))
  in
  let e7_engine = small_engine () in
  let e7 =
    Test.make ~name:"E7 join+leave pair"
      (Staged.stage (fun () ->
           ignore (Engine.join e7_engine Node.Honest);
           ignore (Engine.leave e7_engine (Engine.random_node e7_engine))))
  in
  let e8_engine = small_engine () in
  let e8 =
    Test.make ~name:"E8 clustered broadcast"
      (Staged.stage (fun () ->
           ignore (Apps.Broadcast.run e8_engine ~origin:(Engine.random_node e8_engine))))
  in
  let e9_graph = Dsgraph.Gen.ring ~n:64 in
  let e9_rng = Rng.of_int 9 in
  let e9 =
    Test.make ~name:"E9 plain CTRW walk"
      (Staged.stage (fun () ->
           ignore (Randwalk.Ctrw.walk e9_graph e9_rng ~start:0 ~duration:12.0 ())))
  in
  let e10_engine = small_engine () in
  let e10_driver =
    Adversary.create ~tau:0.15 ~strategy:(Adversary.Grow_shrink 64) e10_engine
  in
  let e10 =
    Test.make ~name:"E10 grow-shrink sweep step"
      (Staged.stage (fun () -> Adversary.step e10_driver))
  in
  let f1_engine = small_engine () in
  let f1 =
    Test.make ~name:"F1 maintenance op (vs init)"
      (Staged.stage (fun () ->
           ignore (Engine.join f1_engine Node.Honest);
           ignore (Engine.leave f1_engine (Engine.random_node f1_engine))))
  in
  let f2_cfg =
    Cluster.Config.build_uniform ~rng:(Rng.of_int 12) ~n_clusters:4 ~cluster_size:9
      ~byz_per_cluster:2 ~overlay_degree:3 ()
  in
  let f2 =
    Test.make ~name:"F2 message-level exchange of one node"
      (Staged.stage (fun () ->
           match Cluster.Exchange.exchange_node f2_cfg ~node:3 with
           | Ok _ -> ()
           | Error _ -> ()))
  in
  let e11_engine =
    let params =
      Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.25 ~epsilon:0.05
        ~walk_mode:Params.Direct_sample ()
    in
    let rng = Rng.create 43L in
    Engine.create ~seed:43L params ~initial:(population rng 300 0.25)
  in
  let e11_driver =
    Adversary.create ~tau:0.25 ~strategy:Adversary.Target_cluster e11_engine
  in
  let e11 =
    Test.make ~name:"E11 step under 1/r adversary"
      (Staged.stage (fun () -> Adversary.step e11_driver))
  in
  let a1_engine =
    let params =
      Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 ~walk_mode:Params.Direct_sample
        ~merge_policy:Params.Rejoin_self ()
    in
    let rng = Rng.create 44L in
    Engine.create ~seed:44L params ~initial:(population rng 300 0.15)
  in
  let a1_rng = Rng.of_int 45 in
  let a1 =
    Test.make ~name:"A1 churn step (rejoin-self merges)"
      (Staged.stage (fun () ->
           if Rng.bool a1_rng then ignore (Engine.join a1_engine Node.Honest)
           else ignore (Engine.leave a1_engine (Engine.random_node a1_engine))))
  in
  let a2_engine =
    let params =
      Params.make ~n_max:(1 lsl 10) ~k:3 ~tau:0.15 ~walk_duration_c:4.0
        ~walk_mode:Params.Exact_walk ()
    in
    let rng = Rng.create 46L in
    Engine.create ~seed:46L params ~initial:(population rng 300 0.15)
  in
  let a2 =
    Test.make ~name:"A2 randCl with doubled duration"
      (Staged.stage (fun () -> ignore (Engine.rand_cl a2_engine ())))
  in
  let e12_cfg =
    Cluster.Config.build_uniform ~rng:(Rng.of_int 47) ~n_clusters:5 ~cluster_size:10
      ~byz_per_cluster:1 ~overlay_degree:3 ()
  in
  let e12_next = ref 500_000 in
  let e12 =
    Test.make ~name:"E12 message-level join+leave (end-to-end)"
      (Staged.stage (fun () ->
           incr e12_next;
           (match Cluster.Ops.join e12_cfg ~node:!e12_next ~contact:0 () with
           | Ok _ -> ()
           | Error _ -> ());
           match Cluster.Ops.leave e12_cfg ~node:!e12_next () with
           | Ok _ -> ()
           | Error _ -> ()))
  in
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; f1; f2; a1; a2 ]

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (one per experiment) ==";
  let tests = micro_tests () in
  let grouped = Test.make_grouped ~name:"now" tests in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let table =
    Metrics.Table.create ~title:"micro-benchmarks (monotonic clock)"
      ~columns:[ "benchmark"; "time per run"; "r^2" ]
  in
  List.iter
    (fun (name, est) ->
      let ns = Analyze.OLS.estimates est in
      let time_ns = match ns with Some (t :: _) -> t | _ -> nan in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square est with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Metrics.Table.add_row table
        [ Metrics.Table.S name; Metrics.Table.S pretty; Metrics.Table.S r2 ])
    rows;
  Metrics.Table.print table

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let skip_micro = List.mem "--skip-micro" args in
  let ids =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  let mode = if full then Harness.Common.Full else Harness.Common.Quick in
  Printf.printf
    "NOW/OVER reproduction bench — experiments %s in %s mode\n\n%!"
    (match ids with [] -> "E1..E12, F1, F2, A1, A2" | _ -> String.concat ", " ids)
    (if full then "FULL" else "QUICK");
  let results = Harness.Registry.run_ids ~mode ids in
  let ok = List.length (List.filter (fun r -> r.Harness.Common.ok) results) in
  Printf.printf "==> %d/%d experiments reproduce the paper's shape.\n\n%!" ok
    (List.length results);
  if not skip_micro then run_micro ();
  if ok < List.length results then exit 1
