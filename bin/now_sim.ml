(* now_sim — command-line driver for the NOW/OVER reproduction.

   Sub-commands:
     experiments   run the paper-reproduction experiment suite (E1..E13, F1-F2, A1-A2)
     churn         run a free-form adversarial churn simulation
     resume        resume a churn simulation from a saved snapshot
     scenario      run a named scenario from the registry on either engine
     byz           inject a Byzantine behaviour into the message engine
     trace         record a deterministic trace + per-primitive profile
     monitor       time-series sample the paper's invariants, export a dashboard
     audit         record the canonical per-subsystem digest stream of a run
     bisect        find the first step/subsystem where two runs diverge
     init          run only the initialisation phase and report its cost

   The byz / trace / monitor / scenario sub-commands are thin wrappers
   over lib/scenario: a scenario spec (from the registry or flags) is
   handed to the engine-agnostic drivers, and every cell derives all its
   randomness from --seed (default 42) plus the cell index — outputs are
   byte-identical for any -j and across reruns. *)

open Cmdliner

module Engine = Now_core.Engine
module Params = Now_core.Params
module Node = Now_core.Node
module Rng = Prng.Rng

(* ---------------- shared options ---------------- *)

let seed_t =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "PRNG seed (default 42).  Every sub-command derives all of its \
           randomness from this seed, so equal invocations produce \
           byte-identical outputs.")

let n_max_t =
  Arg.(
    value
    & opt int (1 lsl 14)
    & info [ "n-max" ] ~docv:"N" ~doc:"Name-space bound N (max network size).")

let n0_t =
  Arg.(
    value & opt int 1000
    & info [ "n0" ] ~docv:"N0" ~doc:"Initial network size (>= sqrt N).")

let k_t =
  Arg.(
    value & opt int 8
    & info [ "k" ] ~docv:"K" ~doc:"Cluster-size security parameter (|C| ~ k log2 N).")

let tau_t =
  Arg.(
    value & opt float 0.15
    & info [ "tau" ] ~docv:"TAU" ~doc:"Fraction of Byzantine nodes (< 1/3).")

let exact_walk_t =
  Arg.(
    value & flag
    & info [ "exact-walk" ]
        ~doc:"Run real biased CTRWs for randCl instead of direct sampling.")

let no_shuffle_t =
  Arg.(
    value & flag
    & info [ "no-shuffle" ]
        ~doc:"Disable the exchange shuffling (the vulnerable baseline).")

let verbose_t =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Log protocol events (splits, merges, violations).")

let jobs_t =
  let positive_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok j when j >= 1 -> Ok j
      | Ok j -> Error (`Msg (Printf.sprintf "expected a positive job count, got %d" j))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt (some positive_int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the deterministic Exec pool (default: \
           available cores).  Results are byte-identical for any $(docv); \
           $(b,-j 1) reproduces the sequential run.")

let setup_jobs jobs =
  match jobs with Some j -> Exec.set_default_jobs j | None -> ()

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let make_params ~n_max ~k ~tau ~exact_walk ~no_shuffle =
  Params.make ~n_max ~k ~tau
    ~walk_mode:(if exact_walk then Params.Exact_walk else Params.Direct_sample)
    ~shuffle_on_churn:(not no_shuffle) ()

let make_engine ~seed ~params ~n0 ~tau =
  let rng = Rng.of_int (seed + 1) in
  let initial = Harness.Common.initial_population rng ~n:n0 ~tau in
  Engine.create ~seed:(Int64.of_int seed) params ~initial

let write_file path data =
  let oc = open_out path in
  output_string oc data;
  close_out oc

(* ---------------- experiments ---------------- *)

let experiments_cmd =
  let ids_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (E1..E13, F1, F2, A1, A2); default all.")
  in
  let full_t =
    Arg.(value & flag & info [ "full" ] ~doc:"EXPERIMENTS.md scale (slow).")
  in
  let csv_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR" ~doc:"Also write each result table as DIR/<id>.csv.")
  in
  let list_t =
    Arg.(value & flag & info [ "list" ] ~doc:"List the experiment ids and exit.")
  in
  let monitor_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "monitor" ] ~docv:"DIR"
          ~doc:
            "Sample the paper's invariants while the experiments run and \
             write DIR/monitor.{jsonl,csv,html}.  Sampling never touches \
             a random stream, so every table is byte-identical with \
             monitoring on or off.")
  in
  let cadence_t =
    Arg.(
      value & opt int 1
      & info [ "cadence" ] ~docv:"K"
          ~doc:"Monitor sampling period in sim-time units (with $(b,--monitor)).")
  in
  let run ids full csv list monitor_dir cadence jobs =
    setup_jobs jobs;
    if list then begin
      (* Natural order: alphabetic family, then numeric suffix — so E2
         sorts before E10 and the ablations lead with A1, A2. *)
      let natural_key id =
        let is_digit c = c >= '0' && c <= '9' in
        let rec first_digit i =
          if i >= String.length id || is_digit id.[i] then i
          else first_digit (i + 1)
        in
        let split = first_digit 0 in
        let num =
          if split >= String.length id then 0
          else int_of_string (String.sub id split (String.length id - split))
        in
        (String.sub id 0 split, num)
      in
      Harness.Registry.descriptions
      |> List.sort (fun (a, _) (b, _) -> compare (natural_key a) (natural_key b))
      |> List.iter (fun (id, desc) -> Printf.printf "%-4s %s\n" id desc);
      `Ok ()
    end
    else if cadence < 1 then `Error (true, "cadence must be >= 1")
    else begin
    match List.filter (fun id -> Harness.Registry.find id = None) ids with
    | _ :: _ as unknown ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment id(s): %s; available: %s"
            (String.concat ", " unknown)
            (String.concat ", " (List.map fst Harness.Registry.all)) )
    | [] ->
    let mode = if full then Harness.Common.Full else Harness.Common.Quick in
    let store =
      match monitor_dir with
      | None -> None
      | Some _ -> Some (Monitor.create ~cadence ())
    in
    let results =
      match store with
      | None -> Harness.Registry.run_ids ~mode ids
      | Some m ->
        Monitor.with_monitor m (fun () -> Harness.Registry.run_ids ~mode ids)
    in
    (match (store, monitor_dir) with
    | Some m, Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let w name data =
        let path = Filename.concat dir name in
        write_file path data;
        Printf.printf "wrote %s\n" path
      in
      w "monitor.jsonl" (Monitor.Export.jsonl_string m);
      w "monitor.csv" (Monitor.Export.csv_string m);
      w "monitor.html"
        (Monitor.Dashboard.render ~title:"nowlib experiments — invariant monitor" m)
    | _ -> ());
    (match csv with
    | None -> ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun r ->
          let path = Filename.concat dir (r.Harness.Common.id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Metrics.Table.to_csv r.Harness.Common.table);
          close_out oc;
          Printf.printf "wrote %s\n" path)
        results);
    let ok = List.length (List.filter (fun r -> r.Harness.Common.ok) results) in
    Printf.printf "==> %d/%d experiments reproduce the paper's shape.\n" ok
      (List.length results);
    if ok = List.length results then `Ok ()
    else `Error (false, "some experiments mismatched")
    end
  in
  let term =
    Term.(
      ret
        (const run $ ids_t $ full_t $ csv_t $ list_t $ monitor_t $ cadence_t
       $ jobs_t))
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the paper-reproduction experiment suite (DESIGN.md section 4).")
    term

(* ---------------- churn ---------------- *)

let strategy_t =
  Arg.(
    value & opt string "random"
    & info [ "strategy" ] ~docv:"STRATEGY"
        ~doc:"Adversary strategy ($(b,--list-strategies) shows the set).")

let list_strategies_t =
  Arg.(
    value & flag
    & info [ "list-strategies" ] ~doc:"List the adversary strategies and exit.")

let print_catalogue catalogue =
  List.iter (fun (name, doc) -> Printf.printf "%-14s %s\n" name doc) catalogue

let steps_t =
  Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"STEPS" ~doc:"Time steps to run.")

let snapshot_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-snapshot" ] ~docv:"FILE"
        ~doc:"Write the final engine state to FILE (resume with $(b,resume)).")

let drive_and_report ~engine ~seed ~tau ~strategy ~steps ~snapshot_out =
  let driver =
    Adversary.create ~seed:(Int64.of_int (seed + 7)) ~tau ~strategy engine
  in
  let sample d =
    Printf.printf
      "step %6d  n=%6d  #C=%4d  min honest=%.3f  target byz=%.3f  events=%d\n%!"
      (Adversary.steps_done d) (Engine.n_nodes engine) (Engine.n_clusters engine)
      (Engine.min_honest_fraction engine)
      (Adversary.target_byz_fraction d)
      (Engine.violation_events engine)
  in
  Adversary.run ~steps_per_sample:(max 1 (steps / 10)) driver ~steps ~on_sample:sample;
  Engine.check_invariants engine;
  let h = Engine.overlay_health engine in
  Printf.printf "\nsummary after %d steps (%s):\n" steps
    (Adversary.strategy_name strategy);
  Printf.printf "  honest-fraction floor : %.3f\n"
    (Adversary.min_honest_fraction_seen driver);
  Printf.printf "  standing violations   : %d (events: %d)\n"
    (Engine.violations_now engine)
    (Engine.violation_events engine);
  Printf.printf "  overlay               : %s\n" (Format.asprintf "%a" Over.pp_health h);
  Printf.printf "  total messages        : %d\n"
    (Metrics.Ledger.total_messages (Engine.ledger engine));
  let t = Engine.totals engine in
  Printf.printf "  lifetime ops          : %d joins, %d leaves, %d splits, %d \
                 merges, %d rejoins\n"
    t.Engine.total_joins t.Engine.total_leaves t.Engine.total_splits
    t.Engine.total_merges t.Engine.total_rejoins;
  match snapshot_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Engine.save engine);
    close_out oc;
    Printf.printf "  snapshot saved        : %s\n" path

let churn_cmd =
  let run seed n_max n0 k tau exact_walk no_shuffle strategy steps verbose
      snapshot_out list_strategies =
    if list_strategies then begin
      print_catalogue Adversary.strategy_catalogue;
      `Ok ()
    end
    else
      match Adversary.strategy_of_name ~steps strategy with
      | Error msg -> `Error (false, msg)
      | Ok strategy ->
        setup_logs verbose;
        let params = make_params ~n_max ~k ~tau ~exact_walk ~no_shuffle in
        Printf.printf "parameters: %s\n" (Format.asprintf "%a" Params.pp params);
        let engine = make_engine ~seed ~params ~n0 ~tau in
        Printf.printf "initialised: n=%d clusters=%d min honest=%.3f\n%!"
          (Engine.n_nodes engine) (Engine.n_clusters engine)
          (Engine.min_honest_fraction engine);
        drive_and_report ~engine ~seed ~tau ~strategy ~steps ~snapshot_out;
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_t $ n_max_t $ n0_t $ k_t $ tau_t $ exact_walk_t
       $ no_shuffle_t $ strategy_t $ steps_t $ verbose_t $ snapshot_out_t
       $ list_strategies_t))
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:"Run an adversarial churn simulation and report safety metrics.")
    term

(* ---------------- resume ---------------- *)

let resume_cmd =
  let snapshot_in_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "snapshot" ] ~docv:"FILE" ~doc:"Snapshot written by $(b,churn --save-snapshot).")
  in
  let run seed snapshot_path strategy steps verbose snapshot_out =
    match Adversary.strategy_of_name ~steps strategy with
    | Error msg -> `Error (false, msg)
    | Ok strategy ->
      setup_logs verbose;
      let ic = open_in snapshot_path in
      let len = in_channel_length ic in
      let data = really_input_string ic len in
      close_in ic;
      let engine = Engine.load data in
      let tau = (Engine.params engine).Params.tau in
      Printf.printf "resumed: n=%d clusters=%d at time step %d\n%!"
        (Engine.n_nodes engine) (Engine.n_clusters engine) (Engine.time_step engine);
      drive_and_report ~engine ~seed ~tau ~strategy ~steps ~snapshot_out;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ seed_t $ snapshot_in_t $ strategy_t $ steps_t $ verbose_t
       $ snapshot_out_t))
  in
  Cmd.v
    (Cmd.info "resume" ~doc:"Resume a churn simulation from a saved snapshot.")
    term

(* ---------------- byz ---------------- *)

(* Fault-injection scenario: a fixed message-level population where a
   [tau] fraction of every cluster runs the requested behaviour, driven
   through all four primitives under a trace collector; every injected
   deviation surfaces as a byz.* point, counted and reported. *)
let byz_cmd =
  let behavior_t =
    Arg.(
      value & opt string "equivocate"
      & info [ "behavior" ] ~docv:"BEHAVIOR"
          ~doc:"Byzantine behaviour to inject ($(b,--list) shows the set).")
  in
  let byz_tau_t =
    Arg.(
      value & opt float 0.25
      & info [ "tau" ] ~docv:"TAU"
          ~doc:"Corrupted fraction of every cluster (rounded to members).")
  in
  let list_t =
    Arg.(value & flag & info [ "list" ] ~doc:"List the behaviours and exit.")
  in
  let trials_t =
    Arg.(
      value & opt int 10
      & info [ "trials" ] ~docv:"N" ~doc:"Transfers/draws/walks per primitive.")
  in
  let run behavior tau list trials seed =
    if list then begin
      print_catalogue Adversary.Behavior.catalogue;
      `Ok ()
    end
    else if tau < 0.0 || tau > 1.0 then `Error (true, "tau must be within [0, 1]")
    else if trials < 1 then `Error (true, "need at least one trial")
    else
      match Adversary.Behavior.of_name behavior with
      | Error msg -> `Error (false, msg)
      | Ok _ ->
        Trace.start ();
        let n_clusters = 6 and cluster_size = 12 in
        let byz_per_cluster =
          min cluster_size
            (int_of_float ((tau *. float_of_int cluster_size) +. 0.5))
        in
        (* The historical byz geometry as a scenario spec; the primitives
           are then driven one by one through the message-level driver,
           on the same [Rng.of_int (seed + 11)] stream as always. *)
        let spec =
          {
            Scenario.Spec.default with
            Scenario.Spec.name = "byz";
            churn = Scenario.Spec.Static;
            drive = Scenario.Spec.no_drive;
            behavior = Some behavior;
            n_clusters;
            cluster_size;
            overlay_degree = 3;
            byz_per_cluster = Some byz_per_cluster;
            randnum_range = 1_000;
            walk_duration = None;
          }
        in
        let d = Scenario.Msg_driver.of_rng ~rng:(Rng.of_int (seed + 11)) spec in
        (* Validated transfers around the overlay. *)
        for i = 1 to trials do
          Scenario.Msg_driver.valchan_once d ~time:i
        done;
        (* randNum draws. *)
        for i = 1 to trials do
          Scenario.Msg_driver.randnum_once d ~time:i
        done;
        (* randCl walks. *)
        for i = 1 to trials do
          Scenario.Msg_driver.walk_once d ~time:i
        done;
        (* One full exchange. *)
        let exchange_ok = Scenario.Msg_driver.exchange d in
        let s = Scenario.Msg_driver.stats d in
        let dump = Trace.stop () in
        (* Tally the injected deviations (the byz.-prefixed points) and the
           honest-side detections (walk.retry, randnum.stall). *)
        let tally = Hashtbl.create 16 in
        List.iter
          (fun item ->
            match item with
            | Trace.Mark { name; _ } ->
              let interesting =
                String.length name >= 4 && String.sub name 0 4 = "byz."
                || name = "walk.retry" || name = "randnum.stall"
              in
              if interesting then
                Hashtbl.replace tally name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt tally name))
            | Trace.Span _ -> ())
          (Trace.items dump);
        Printf.printf "behavior %s at tau %.2f: %d/%d corrupted per cluster\n\n"
          behavior tau byz_per_cluster cluster_size;
        Printf.printf "  valchan : %d transfers — %d honest-accepted, %d forged, %d rejected\n"
          trials s.Scenario.Stats.valchan_accepted s.Scenario.Stats.valchan_forged
          s.Scenario.Stats.valchan_rejected;
        Printf.printf "  randnum : %d draws — %d stalled, %d insecure\n" trials
          s.Scenario.Stats.randnum_stalls s.Scenario.Stats.randnum_insecure;
        Printf.printf "  randcl  : %d walks — %d completed (%d hop retries), %d failed\n"
          trials s.Scenario.Stats.walks_ok s.Scenario.Stats.walk_retries
          s.Scenario.Stats.walks_failed;
        Printf.printf "  exchange: %s\n\n" (if exchange_ok then "completed" else "failed");
        let deviations =
          Hashtbl.fold (fun name c acc -> (name, c) :: acc) tally []
          |> List.sort compare
        in
        if deviations = [] then print_endline "  no deviation points recorded"
        else begin
          print_endline "  deviation / detection points:";
          List.iter (fun (name, c) -> Printf.printf "    %-24s %6d\n" name c) deviations
        end;
        print_newline ();
        print_string (Trace.Report.render (Trace.Report.of_dump dump));
        `Ok ()
  in
  let term =
    Term.(ret (const run $ behavior_t $ byz_tau_t $ list_t $ trials_t $ seed_t))
  in
  Cmd.v
    (Cmd.info "byz"
       ~doc:
         "Inject a Byzantine behaviour into the message engine and report \
          every deviation.")
    term

(* ---------------- shared scenario-cell options ---------------- *)

(* The trace / monitor / scenario sub-commands all fan the same cell
   construction out on the Exec pool: cell [i] of a spec runs on the
   state-level engine, the message-level engine, or alternates between
   them ([Scenario.cell_driver]), with all randomness derived from
   --seed and [i]. *)

(* Built on [Scenario.engine_of_name] rather than [Arg.enum] so an
   unknown name gets the library's catalogue-listing error, and the
   engine list lives in exactly one place. *)
let engine_conv =
  let parse s =
    match Scenario.engine_of_name (String.lowercase_ascii s) with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  let print fmt e = Format.pp_print_string fmt (Scenario.engine_name e) in
  Arg.conv ~docv:"ENGINE" (parse, print)

let engine_pos_t ~what =
  Arg.(
    value & pos 0 engine_conv `Mixed
    & info [] ~docv:"ENGINE"
        ~doc:
          (Printf.sprintf
             "What to %s: $(b,state) (state-level engine cells), $(b,msg) \
              (message-level kernel cells), $(b,async) (discrete-event \
              cells with per-link latency) or $(b,mixed) \
              (state/msg alternating; default)."
             what))

let scenario_name_t ~default =
  Arg.(
    value & opt string default
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Scenario to drive (default $(b,%s)); $(b,scenario --list) \
              shows the registry.  Strategy scenarios accept parameters, \
              e.g. $(b,flash-crowd:size=400,at=100)."
             default))

let opt_steps_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "steps" ] ~docv:"STEPS"
        ~doc:"Operations per cell (default: the scenario's own step count).")

let cells_t ~doc =
  Arg.(value & opt int 4 & info [ "cells" ] ~docv:"CELLS" ~doc)

(* Resolve the CLI's scenario choices into a runnable spec, or a
   CLI-friendly error. *)
let resolve_spec ~engine ~scenario ~steps =
  match Scenario.of_name ?steps scenario with
  | Error msg -> Error msg
  | Ok spec -> (
    let spec =
      match steps with
      | None -> spec
      | Some steps -> { spec with Scenario.Spec.steps }
    in
    match Scenario.check_supported engine spec with
    | Error msg -> Error msg
    | Ok () -> Ok spec)

let total_messages results =
  List.fold_left
    (fun acc (_, s) -> acc + s.Scenario.Stats.messages)
    0 results

(* Opt-in Exec-pool introspection, shared by trace and monitor.  The
   block prints after every gated byte (exports are files, the stats go
   to stdout last) and the flag defaults to off, so enabling it cannot
   perturb a byte-identity contract — the wall-clock fields are
   explicitly non-deterministic. *)
let exec_stats_t =
  Arg.(
    value & flag
    & info [ "exec-stats" ]
        ~doc:
          "After the run, print the Exec pool's scheduling counters \
           (tasks per worker rank, spawn/budget decisions, queue-wait and \
           merge-stall wall time).  Wall-clock figures are \
           non-deterministic; no exported file changes.")

let print_exec_stats () =
  let s = Exec.stats () in
  Printf.printf
    "\nexec pool: %d par_map calls, %d tasks (%d run by callers), %d \
     workers spawned, %d budget denials\n"
    s.Exec.par_calls s.Exec.tasks s.Exec.caller_tasks s.Exec.workers_spawned
    s.Exec.budget_denials;
  Printf.printf "  queue wait %.3fs total, merge stall %.3fs (wall clock, \
                 non-deterministic)\n"
    s.Exec.queue_wait_s s.Exec.merge_stall_s;
  if Array.length s.Exec.worker_tasks > 0 then begin
    print_string "  tasks per worker rank:";
    Array.iter (fun n -> Printf.printf " %d" n) s.Exec.worker_tasks;
    print_newline ()
  end

(* ---------------- trace ---------------- *)

let trace_cmd =
  let engine_t = engine_pos_t ~what:"trace" in
  let out_t =
    Arg.(
      value & opt string "trace.jsonl"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSONL trace to FILE.")
  in
  let chrome_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome trace_event JSON to FILE (load in Perfetto \
             or chrome://tracing).")
  in
  let cells_t =
    cells_t
      ~doc:
        "Independent simulation cells, fanned out on the Exec pool; the \
         merged trace is byte-identical for any $(b,-j)."
  in
  let net_detail_t =
    Arg.(
      value & flag
      & info [ "net-detail" ]
          ~doc:
            "Also record one point per kernel message, round boundary and \
             walk hop (voluminous).")
  in
  let profile_alloc_t =
    Arg.(
      value & flag
      & info [ "profile-alloc" ]
          ~doc:
            "Record per-span allocation deltas ($(b,Gc.allocated_bytes) on \
             the span's own domain) into the trace and add alloc columns \
             to the profile report.  Informational: allocation is not part \
             of any byte-identity gate.")
  in
  let run engine scenario out chrome cells steps net_detail profile_alloc
      exec_stats seed jobs =
    setup_jobs jobs;
    if cells < 1 then `Error (true, "need at least one cell")
    else
      match resolve_spec ~engine ~scenario ~steps with
      | Error msg -> `Error (false, msg)
      | Ok spec ->
        let steps = spec.Scenario.Spec.steps in
        Trace.start ~net_detail ~profile_alloc ();
        let results = Scenario.cells ~engine ~seed ~cells spec in
        let dump = Trace.stop () in
        write_file out (Trace.to_jsonl dump);
        (match chrome with
        | None -> ()
        | Some path -> write_file path (Trace.to_chrome dump));
        let items = Trace.items dump in
        let spans =
          List.length
            (List.filter (function Trace.Span _ -> true | Trace.Mark _ -> false) items)
        in
        Printf.printf
          "scenario %s on %s: %d cells x %d steps, %d simulated messages\n\
           trace: %d spans, %d items, %d dropped -> %s%s\n\n"
          spec.Scenario.Spec.name (Scenario.engine_name engine) cells steps
          (total_messages results) spans (List.length items) dump.Trace.dropped
          out
          (match chrome with None -> "" | Some p -> Printf.sprintf " (+ %s)" p);
        print_string (Trace.Report.render (Trace.Report.of_dump dump));
        if exec_stats then print_exec_stats ();
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ engine_t $ scenario_name_t ~default:"steady" $ out_t
       $ chrome_t $ cells_t $ opt_steps_t $ net_detail_t $ profile_alloc_t
       $ exec_stats_t $ seed_t $ jobs_t))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Trace a deterministic scenario and print the per-primitive \
          profile report.")
    term

(* ---------------- monitor ---------------- *)

let monitor_cmd =
  let engine_t = engine_pos_t ~what:"monitor" in
  let out_t =
    Arg.(
      value & opt string "monitor.jsonl"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSONL series to FILE.")
  in
  let csv_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the flat CSV to FILE.")
  in
  let html_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:
            "Also write the self-contained SVG dashboard (no external \
             assets) to FILE.")
  in
  let cells_t =
    cells_t
      ~doc:
        "Independent simulation cells, fanned out on the Exec pool; every \
         output is byte-identical for any $(b,-j)."
  in
  let cadence_t =
    Arg.(
      value & opt int 1
      & info [ "cadence" ] ~docv:"K"
          ~doc:"Sample the gauges every K-th sim-time step.")
  in
  let behavior_t =
    Arg.(
      value & opt string "equivocate"
      & info [ "behavior" ] ~docv:"BEHAVIOR"
          ~doc:
            "Byzantine behaviour for the msg cells ($(b,byz --list) shows \
             the set).")
  in
  let byz_tau_t =
    Arg.(
      value & opt float 0.15
      & info [ "byz-tau" ] ~docv:"TAU"
          ~doc:
            "Corrupted fraction of every msg-cell cluster; above 1/3 the \
             honest-fraction bound breaches and the monitor records the \
             violations.")
  in
  let run engine scenario out csv html cells steps cadence behavior byz_tau
      exec_stats seed jobs =
    setup_jobs jobs;
    if cells < 1 then `Error (true, "need at least one cell")
    else if (match steps with Some s -> s < 1 | None -> false) then
      `Error (true, "need at least one step")
    else if cadence < 1 then `Error (true, "cadence must be >= 1")
    else if byz_tau < 0.0 || byz_tau > 1.0 then
      `Error (true, "byz-tau must be within [0, 1]")
    else
      match Adversary.Behavior.of_name behavior with
      | Error msg -> `Error (false, msg)
      | Ok _ -> (
      match resolve_spec ~engine ~scenario ~steps with
      | Error msg -> `Error (false, msg)
      | Ok spec ->
        (* The monitor's msg cells always inject the requested behaviour
           at the requested corruption level — above 1/3 the honest-
           fraction bound breaches by construction (the demonstrated
           violation path). *)
        let spec =
          {
            spec with
            Scenario.Spec.behavior = Some behavior;
            byz_per_cluster =
              Some
                (min spec.Scenario.Spec.cluster_size
                   (int_of_float
                      ((byz_tau
                       *. float_of_int spec.Scenario.Spec.cluster_size)
                      +. 0.5)));
          }
        in
        let steps = spec.Scenario.Spec.steps in
        let store = Monitor.create ~cadence () in
        (* The trace collector runs alongside the monitor: after the run,
           the byz.* deviation points it gathered are folded back into the
           store as per-window counter series. *)
        Trace.start ();
        let results =
          Monitor.with_monitor store (fun () ->
              Scenario.cells ~engine ~seed ~cells spec)
        in
        let dump = Trace.stop () in
        Monitor.Probe.ingest_trace store ~labels:[ ("source", "trace") ]
          ~bucket:50 dump;
        write_file out (Monitor.Export.jsonl_string store);
        Printf.printf "wrote %s\n" out;
        (match csv with
        | None -> ()
        | Some p ->
          write_file p (Monitor.Export.csv_string store);
          Printf.printf "wrote %s\n" p);
        (match html with
        | None -> ()
        | Some p ->
          write_file p (Monitor.Dashboard.render store);
          Printf.printf "wrote %s\n" p);
        Printf.printf
          "scenario %s on %s: %d cells x %d steps (cadence %d), %d simulated \
           messages\n"
          spec.Scenario.Spec.name (Scenario.engine_name engine) cells steps
          cadence (total_messages results);
        Printf.printf "samples: %d   violations: %d\n"
          (Monitor.Store.n_samples store)
          (Monitor.Store.n_violations store);
        let tally =
          List.fold_left
            (fun acc (v : Monitor.Store.violation) ->
              match acc with
              | (inv, n) :: rest when inv = v.Monitor.Store.invariant ->
                (inv, n + 1) :: rest
              | _ -> (v.Monitor.Store.invariant, 1) :: acc)
            []
            (Monitor.Store.violations store)
          |> List.rev
        in
        if tally <> [] then begin
          print_endline "breached invariants:";
          List.iter (fun (inv, n) -> Printf.printf "  %-24s %6d\n" inv n) tally
        end;
        if exec_stats then print_exec_stats ();
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ engine_t $ scenario_name_t ~default:"primitives" $ out_t
       $ csv_out_t $ html_t $ cells_t $ opt_steps_t $ cadence_t $ behavior_t
       $ byz_tau_t $ exec_stats_t $ seed_t $ jobs_t))
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Time-series sample the paper's invariants over a deterministic \
          scenario and export JSONL / CSV / an SVG dashboard.")
    term

(* ---------------- audit ---------------- *)

let audit_cadence_t =
  Arg.(
    value & opt int 1
    & info [ "cadence" ] ~docv:"K"
        ~doc:"Record a digest frame every K-th sim-time step.")

let audit_cmd =
  let engine_t = engine_pos_t ~what:"audit" in
  let out_t =
    Arg.(
      value & opt string "digests.jsonl"
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the digest stream to FILE.")
  in
  let cells_t =
    cells_t
      ~doc:
        "Independent simulation cells, fanned out on the Exec pool; the \
         stream is byte-identical for any $(b,-j)."
  in
  let run engine scenario out cells steps cadence seed jobs =
    setup_jobs jobs;
    if cells < 1 then `Error (true, "need at least one cell")
    else if (match steps with Some s -> s < 1 | None -> false) then
      `Error (true, "need at least one step")
    else if cadence < 1 then `Error (true, "cadence must be >= 1")
    else
      match resolve_spec ~engine ~scenario ~steps with
      | Error msg -> `Error (false, msg)
      | Ok spec ->
        let recorder = Audit.create ~cadence () in
        let results =
          Audit.with_recorder recorder (fun () ->
              Scenario.cells ~engine ~seed ~cells spec)
        in
        write_file out (Audit.Export.jsonl_string recorder);
        Printf.printf "wrote %s\n" out;
        Printf.printf
          "scenario %s on %s: %d cells x %d steps (cadence %d), %d simulated \
           messages\n\
           digest frames: %d (%d subsystems per recorded step)\n"
          spec.Scenario.Spec.name (Scenario.engine_name engine) cells
          spec.Scenario.Spec.steps cadence (total_messages results)
          (Audit.Recorder.n_frames recorder)
          (List.length Audit.Digest_of.subsystems);
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ engine_t $ scenario_name_t ~default:"steady" $ out_t
       $ cells_t $ opt_steps_t $ audit_cadence_t $ seed_t $ jobs_t))
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Record the flight recorder's canonical per-subsystem digest \
          stream over a deterministic scenario (compare runs with \
          $(b,bisect)).")
    term

(* ---------------- bisect ---------------- *)

(* The mis-seeding demo: one message-level cell on a static spec (no
   churn, no drive), stepped by hand.  Steps consume no randomness, so
   after [perturb] draws are stolen from the cell's stream between steps
   [at] and [at+1], exactly one subsystem digest — rng — differs from
   step [at+1] on: the bisection must localise to that step and name
   that subsystem. *)
let bisect_static_spec ~steps =
  {
    Scenario.Spec.default with
    Scenario.Spec.name = "bisect-static";
    churn = Scenario.Spec.Static;
    drive = Scenario.Spec.no_drive;
    steps;
  }

let bisect_manual_run ~spec ~seed ~steps ~cadence ~perturb =
  let recorder = Audit.create ~cadence () in
  let d =
    Scenario.Msg_driver.create_cell ~seed ~cell:0 ~labels:[ ("cell", "0") ]
      spec
  in
  Audit.with_recorder recorder (fun () ->
      for time = 1 to steps do
        Scenario.Msg_driver.step d ~time;
        match perturb with
        | Some (n, at) when time = at ->
          let rng = Scenario.Msg_driver.rng d in
          for _ = 1 to n do
            ignore (Rng.int rng 1_000_000)
          done
        | _ -> ()
      done);
  recorder

let bisect_cells_run ~engine ~spec ~seed ~cells ~cadence ~jobs =
  let recorder = Audit.create ~cadence () in
  ignore
    (Audit.with_recorder recorder (fun () ->
         Scenario.cells ?jobs ~engine ~seed ~cells spec));
  recorder

let bisect_cmd =
  let engine_t = engine_pos_t ~what:"bisect" in
  let file_a_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "file-a" ] ~docv:"FILE"
          ~doc:"Digest stream of run A (written by $(b,audit --out)).")
  in
  let file_b_t =
    Arg.(
      value
      & opt (some file) None
      & info [ "file-b" ] ~docv:"FILE" ~doc:"Digest stream of run B.")
  in
  let jobs_a_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs-a" ] ~docv:"N" ~doc:"Worker domains for run A (default $(b,-j)).")
  in
  let jobs_b_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs-b" ] ~docv:"N" ~doc:"Worker domains for run B (default $(b,-j)).")
  in
  let seed_b_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed-b" ] ~docv:"SEED"
          ~doc:"Seed for run B (default $(b,--seed): identical seeding).")
  in
  let perturb_rng_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "perturb-rng" ] ~docv:"N"
          ~doc:
            "Demo mode: steal N draws from run B's RNG stream mid-run \
             (with $(b,--perturb-at)); runs one message-level cell of a \
             static scenario so only the $(b,rng) subsystem can diverge.")
  in
  let perturb_at_t =
    Arg.(
      value & opt int 10
      & info [ "perturb-at" ] ~docv:"STEP"
          ~doc:"Inject the perturbation between STEP and STEP+1 (default 10).")
  in
  let cells_t =
    cells_t ~doc:"Independent simulation cells per run (double-run modes)."
  in
  let run engine scenario file_a file_b jobs_a jobs_b seed_b perturb_rng
      perturb_at cells steps cadence seed jobs =
    setup_jobs jobs;
    let report a_frames b_frames =
      match Audit.Bisect.first_divergence a_frames b_frames with
      | None ->
        Printf.printf "streams agree: %d frames, no divergence\n"
          (List.length a_frames);
        `Ok ()
      | Some d ->
        print_endline (Audit.Bisect.describe d);
        `Ok ()
    in
    match (file_a, file_b) with
    | Some a, Some b -> (
      let read path =
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let data = really_input_string ic len in
        close_in ic;
        Audit.Export.of_jsonl data
      in
      match (read a, read b) with
      | Error msg, _ -> `Error (false, Printf.sprintf "%s: %s" a msg)
      | _, Error msg -> `Error (false, Printf.sprintf "%s: %s" b msg)
      | Ok fa, Ok fb -> report fa fb)
    | Some _, None | None, Some _ ->
      `Error (true, "--file-a and --file-b must be given together")
    | None, None -> (
      if cells < 1 then `Error (true, "need at least one cell")
      else if (match steps with Some s -> s < 1 | None -> false) then
        `Error (true, "need at least one step")
      else if cadence < 1 then `Error (true, "cadence must be >= 1")
      else if perturb_at < 1 then `Error (true, "perturb-at must be >= 1")
      else
        match perturb_rng with
        | Some n ->
          if n < 1 then `Error (true, "perturb-rng must be >= 1")
          else begin
            let steps = Option.value steps ~default:40 in
            let spec = bisect_static_spec ~steps in
            let a =
              bisect_manual_run ~spec ~seed ~steps ~cadence ~perturb:None
            in
            let b =
              bisect_manual_run ~spec
                ~seed:(Option.value seed_b ~default:seed)
                ~steps ~cadence
                ~perturb:(Some (n, perturb_at))
            in
            Printf.printf
              "mis-seeding demo: 1 msg cell x %d static steps, %d draws \
               stolen after step %d\n"
              steps n perturb_at;
            report (Audit.Recorder.frames a) (Audit.Recorder.frames b)
          end
        | None -> (
          match resolve_spec ~engine ~scenario ~steps with
          | Error msg -> `Error (false, msg)
          | Ok spec ->
            let a =
              bisect_cells_run ~engine ~spec ~seed ~cells ~cadence
                ~jobs:jobs_a
            in
            let b =
              bisect_cells_run ~engine ~spec
                ~seed:(Option.value seed_b ~default:seed)
                ~cells ~cadence ~jobs:jobs_b
            in
            Printf.printf
              "scenario %s on %s: 2 runs x %d cells x %d steps (cadence %d)\n"
              spec.Scenario.Spec.name (Scenario.engine_name engine) cells
              spec.Scenario.Spec.steps cadence;
            report (Audit.Recorder.frames a) (Audit.Recorder.frames b)))
  in
  let term =
    Term.(
      ret
        (const run $ engine_t $ scenario_name_t ~default:"steady" $ file_a_t
       $ file_b_t $ jobs_a_t $ jobs_b_t $ seed_b_t $ perturb_rng_t
       $ perturb_at_t $ cells_t $ opt_steps_t $ audit_cadence_t $ seed_t
       $ jobs_t))
  in
  Cmd.v
    (Cmd.info "bisect"
       ~doc:
         "Run two configurations of the same scenario (or read two \
          recorded digest streams) and report the first step and \
          subsystem whose state digests diverge.")
    term

(* ---------------- scenario ---------------- *)

let scenario_cmd =
  let name_t =
    Arg.(
      value & pos 0 string "steady"
      & info [] ~docv:"NAME"
          ~doc:
            "Scenario name (default $(b,steady)); strategy scenarios \
             accept parameters, e.g. $(b,flash-crowd:size=400,at=100).")
  in
  let engine_t =
    Arg.(
      value & opt engine_conv `Mixed
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Driver to run the cells on: $(b,state), $(b,msg), $(b,async) \
             or $(b,mixed) (state/msg alternating; default).")
  in
  let cells_t =
    cells_t
      ~doc:
        "Independent simulation cells, fanned out on the Exec pool; the \
         report is byte-identical for any $(b,-j)."
  in
  let list_t =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenario registry and exit.")
  in
  let run name engine cells steps list seed jobs =
    setup_jobs jobs;
    if list then begin
      print_catalogue Scenario.catalogue;
      `Ok ()
    end
    else if cells < 1 then `Error (true, "need at least one cell")
    else if (match steps with Some s -> s < 1 | None -> false) then
      `Error (true, "need at least one step")
    else
      match resolve_spec ~engine ~scenario:name ~steps with
      | Error msg -> `Error (false, msg)
      | Ok spec ->
        let results = Scenario.cells ~engine ~seed ~cells spec in
        Printf.printf "scenario %s on %s: %d cells x %d steps (seed %d)\n\n"
          spec.Scenario.Spec.name (Scenario.engine_name engine) cells
          spec.Scenario.Spec.steps seed;
        List.iter
          (fun (label, s) ->
            Printf.printf "  %-16s %s\n" label (Scenario.Stats.summary s))
          results;
        Printf.printf "\ntotal messages: %d\n" (total_messages results);
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ name_t $ engine_t $ cells_t $ opt_steps_t $ list_t
       $ seed_t $ jobs_t))
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run a named scenario from the registry on the state-level and/or \
          message-level driver and report per-cell statistics.")
    term

(* ---------------- init ---------------- *)

let init_cmd =
  let run seed n_max n0 k tau =
    let params = make_params ~n_max ~k ~tau ~exact_walk:false ~no_shuffle:false in
    let engine = make_engine ~seed ~params ~n0 ~tau in
    let r = Engine.init_report engine in
    Printf.printf "initialisation report (n0 = %d, N = %d):\n" r.Engine.n0 n_max;
    Printf.printf "  bootstrap edges     : %d\n" r.Engine.bootstrap_edges;
    Printf.printf "  discovery messages  : %d (rounds: %d)\n"
      r.Engine.discovery_messages r.Engine.discovery_rounds;
    Printf.printf "  agreement messages  : %d (rounds: %d, King-Saia model)\n"
      r.Engine.agreement_messages r.Engine.agreement_rounds;
    Printf.printf "  partition messages  : %d\n" r.Engine.partition_messages;
    Printf.printf "  clusters formed     : %d (target size %d)\n"
      r.Engine.initial_clusters
      (Params.target_cluster_size params);
    Printf.printf "  min honest fraction : %.3f\n" (Engine.min_honest_fraction engine)
  in
  let term = Term.(const run $ seed_t $ n_max_t $ n0_t $ k_t $ tau_t) in
  Cmd.v
    (Cmd.info "init" ~doc:"Run only the initialisation phase and report its cost.")
    term

let () =
  let doc = "NOW/OVER — Byzantine-tolerant clustering for highly dynamic networks" in
  let info = Cmd.info "now_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            experiments_cmd; churn_cmd; resume_cmd; scenario_cmd; byz_cmd;
            trace_cmd; monitor_cmd; audit_cmd; bisect_cmd; init_cmd;
          ]))
